package metrics

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/entry"
	"repro/internal/stats"
	"repro/internal/strategy"
)

// makeSets builds per-server sets from entry-name lists.
func makeSets(servers ...[]string) []*entry.Set {
	out := make([]*entry.Set, len(servers))
	for i, names := range servers {
		out[i] = entry.NewSet(len(names))
		for _, name := range names {
			out[i].Add(entry.Entry(name))
		}
	}
	return out
}

func TestStorageCostAndCoverage(t *testing.T) {
	sets := makeSets([]string{"a", "b"}, []string{"b", "c"}, nil)
	if got := StorageCost(sets); got != 4 {
		t.Fatalf("StorageCost = %d, want 4", got)
	}
	if got := Coverage(sets); got != 3 {
		t.Fatalf("Coverage = %d, want 3", got)
	}
}

// TestCoverageFig5 uses the paper's Figure 5 example: both placements
// of five entries on three servers satisfy t=2, but placement 1 covers
// two entries while placement 2 covers five.
func TestCoverageFig5(t *testing.T) {
	placement1 := makeSets(
		[]string{"v1", "v2"}, []string{"v1", "v2"}, []string{"v1", "v2"},
	)
	placement2 := makeSets(
		[]string{"v1", "v2"}, []string{"v2", "v3"}, []string{"v4", "v5"},
	)
	if got := Coverage(placement1); got != 2 {
		t.Fatalf("placement 1 coverage = %d, want 2", got)
	}
	if got := Coverage(placement2); got != 5 {
		t.Fatalf("placement 2 coverage = %d, want 5", got)
	}
}

func TestFaultToleranceFullReplication(t *testing.T) {
	// Full replication tolerates n-1 failures for any satisfiable t.
	sets := makeSets(
		[]string{"a", "b", "c"}, []string{"a", "b", "c"},
		[]string{"a", "b", "c"}, []string{"a", "b", "c"},
	)
	for _, tol := range []struct{ t, want int }{{1, 3}, {3, 3}, {4, 0}} {
		if got := FaultToleranceGreedy(sets, tol.t); got != tol.want {
			t.Errorf("greedy t=%d: %d, want %d", tol.t, got, tol.want)
		}
		if got := FaultToleranceExact(sets, tol.t); got != tol.want {
			t.Errorf("exact t=%d: %d, want %d", tol.t, got, tol.want)
		}
	}
}

func TestFaultToleranceSingleCopies(t *testing.T) {
	// Round-1 style: each entry on exactly one server, 2 entries per
	// server, 3 servers, 6 entries. For t=3, losing any two servers
	// leaves 2 < 3: tolerance 1. For t=2 tolerance 2 (one server left
	// still has 2 entries).
	sets := makeSets(
		[]string{"a", "b"}, []string{"c", "d"}, []string{"e", "f"},
	)
	for _, tol := range []struct{ t, want int }{{2, 2}, {3, 1}, {5, 0}} {
		if got := FaultToleranceExact(sets, tol.t); got != tol.want {
			t.Errorf("exact t=%d: %d, want %d", tol.t, got, tol.want)
		}
		if got := FaultToleranceGreedy(sets, tol.t); got != tol.want {
			t.Errorf("greedy t=%d: %d, want %d", tol.t, got, tol.want)
		}
	}
}

func TestFaultToleranceUnsatisfiable(t *testing.T) {
	sets := makeSets([]string{"a"}, []string{"a"})
	if got := FaultToleranceGreedy(sets, 2); got != 0 {
		t.Fatalf("unsatisfiable greedy = %d, want 0", got)
	}
	if got := FaultToleranceExact(sets, 2); got != 0 {
		t.Fatalf("unsatisfiable exact = %d, want 0", got)
	}
}

// TestGreedyNeverExceedsExact validates the Appendix A heuristic
// against the exact minimum on random small placements: greedy is a
// lower bound on the adversary's power, so greedy >= exact is
// impossible... greedy kills the heuristically best server, the true
// adversary at least as well: exact <= greedy.
func TestGreedyVersusExactRandomPlacements(t *testing.T) {
	rng := stats.NewRNG(31)
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.IntN(4) // 3..6 servers
		h := 4 + rng.IntN(8) // 4..11 entries
		per := 1 + rng.IntN(4)
		servers := make([][]string, n)
		for s := 0; s < n; s++ {
			for c := 0; c < per; c++ {
				servers[s] = append(servers[s], fmt.Sprintf("e%d", rng.IntN(h)))
			}
		}
		sets := makeSets(servers...)
		target := 1 + rng.IntN(h)
		exact := FaultToleranceExact(sets, target)
		greedy := FaultToleranceGreedy(sets, target)
		// The exact adversary is optimal: it needs at most as many
		// failures as the greedy one finds, so exact tolerance <=
		// greedy tolerance.
		if exact > greedy {
			t.Fatalf("trial %d: exact %d > greedy %d (sets %v, t=%d)", trial, exact, greedy, servers, target)
		}
		// And greedy cannot exceed n-1.
		if greedy > n-1 {
			t.Fatalf("greedy %d > n-1", greedy)
		}
	}
}

func TestUnfairnessFromCountsFixedExample(t *testing.T) {
	// Fixed-1 managing 2 entries, t=1 (Sec. 4.5 example): the first
	// entry always returned, unfairness exactly 1.
	universe := []entry.Entry{"v1", "v2"}
	counts := map[entry.Entry]int{"v1": 1000}
	if got := UnfairnessFromCounts(counts, universe, 1, 1000); math.Abs(got-1) > 1e-9 {
		t.Fatalf("unfairness = %v, want 1", got)
	}
	// Perfectly fair: ~0.
	counts = map[entry.Entry]int{"v1": 500, "v2": 500}
	if got := UnfairnessFromCounts(counts, universe, 1, 1000); got != 0 {
		t.Fatalf("fair unfairness = %v, want 0", got)
	}
	// Degenerate inputs.
	if UnfairnessFromCounts(nil, nil, 1, 10) != 0 {
		t.Fatal("empty universe not 0")
	}
	if UnfairnessFromCounts(counts, universe, 0, 10) != 0 {
		t.Fatal("t=0 not 0")
	}
}

func TestExactUnfairness(t *testing.T) {
	universe := entry.Synthetic(100)
	// Fixed-20: every server stores v1..v20; single probe with t=1
	// gives unfairness exactly 2 (Sec. 6.3).
	first20 := make([]string, 20)
	for i := range first20 {
		first20[i] = string(universe[i])
	}
	sets := makeSets(first20, first20, first20)
	if got := ExactUnfairness(sets, universe, 1); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Fixed-20 exact unfairness = %v, want 2", got)
	}
	// Full replication is perfectly fair for any t.
	all := make([]string, 100)
	for i := range all {
		all[i] = string(universe[i])
	}
	sets = makeSets(all, all)
	for _, target := range []int{1, 35, 100} {
		if got := ExactUnfairness(sets, universe, target); math.Abs(got) > 1e-9 {
			t.Fatalf("full replication t=%d unfairness = %v, want 0", target, got)
		}
	}
}

func TestMeasureLookupCostAndUnfairness(t *testing.T) {
	// A synthetic lookup function over a fixed answer distribution.
	rng := stats.NewRNG(5)
	universe := entry.Synthetic(10)
	lookup := func() (strategy.Result, error) {
		// Always two servers contacted; always returns 3 uniform entries.
		sample := make([]entry.Entry, 0, 3)
		seen := map[int]bool{}
		for len(sample) < 3 {
			i := rng.IntN(10)
			if !seen[i] {
				seen[i] = true
				sample = append(sample, universe[i])
			}
		}
		return strategy.Result{Entries: sample, Contacted: 2}, nil
	}
	cost, err := MeasureLookupCost(lookup, 3, 500)
	if err != nil {
		t.Fatal(err)
	}
	if cost.MeanContacted != 2 {
		t.Fatalf("MeanContacted = %v, want 2", cost.MeanContacted)
	}
	if cost.SatisfiedFraction != 1 {
		t.Fatalf("SatisfiedFraction = %v, want 1", cost.SatisfiedFraction)
	}
	// A uniform strategy's de-biased unfairness should be near zero,
	// far below the plug-in estimator's noise floor.
	plain, err := MeasureUnfairness(lookup, universe, 3, 2000)
	if err != nil {
		t.Fatal(err)
	}
	debiased, err := MeasureUnfairnessDebiased(lookup, universe, 3, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if debiased > plain {
		t.Fatalf("debiased %v > plain %v", debiased, plain)
	}
	if debiased > 0.1 {
		t.Fatalf("debiased unfairness of fair strategy = %v, want ~0", debiased)
	}
}

func TestMeasureLookupCostPropagatesError(t *testing.T) {
	fail := func() (strategy.Result, error) { return strategy.Result{}, fmt.Errorf("boom") }
	if _, err := MeasureLookupCost(fail, 1, 3); err == nil {
		t.Fatal("error not propagated")
	}
	if _, err := MeasureUnfairness(fail, entry.Synthetic(2), 1, 3); err == nil {
		t.Fatal("error not propagated")
	}
	if _, err := MeasureUnfairnessDebiased(fail, entry.Synthetic(2), 1, 3); err == nil {
		t.Fatal("error not propagated")
	}
}

func TestFaultToleranceExactPanicsOnLargeN(t *testing.T) {
	sets := make([]*entry.Set, 21)
	for i := range sets {
		sets[i] = entry.NewSet(0)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("exact with n=21 did not panic")
		}
	}()
	FaultToleranceExact(sets, 1)
}

// TestFig8InstanceEnumeration reproduces the paper's Fig. 8 example:
// RandomServer-1 managing 2 entries on 2 servers has four equally
// likely instances; instances 1 and 4 (both servers choose the same
// entry) have unfairness 1, instances 2 and 3 are perfectly fair, so
// the strategy's average unfairness at t=1 is 1/2.
func TestFig8InstanceEnumeration(t *testing.T) {
	universe := []entry.Entry{"v1", "v2"}
	instances := [][][]string{
		{{"v1"}, {"v1"}}, // instance 1
		{{"v1"}, {"v2"}}, // instance 2
		{{"v2"}, {"v1"}}, // instance 3
		{{"v2"}, {"v2"}}, // instance 4
	}
	wantU := []float64{1, 0, 0, 1}
	sum := 0.0
	for i, inst := range instances {
		got := ExactUnfairness(makeSets(inst...), universe, 1)
		if math.Abs(got-wantU[i]) > 1e-12 {
			t.Fatalf("instance %d unfairness = %v, want %v", i+1, got, wantU[i])
		}
		sum += got
	}
	if avg := sum / 4; math.Abs(avg-0.5) > 1e-12 {
		t.Fatalf("strategy unfairness = %v, want 1/2", avg)
	}
}

// TestFig8ViaSimulation checks that real RandomServer-1 placements
// average to the same 1/2 over many instances.
func TestFig8ViaSimulation(t *testing.T) {
	// Importing cluster here would be circular through bench; instead
	// enumerate by the placement rule directly: each server draws a
	// uniform 1-subset independently.
	rng := stats.NewRNG(88)
	universe := []entry.Entry{"v1", "v2"}
	var sum stats.Summary
	for trial := 0; trial < 4000; trial++ {
		pick := func() []string {
			if rng.Bool(0.5) {
				return []string{"v1"}
			}
			return []string{"v2"}
		}
		sum.Observe(ExactUnfairness(makeSets(pick(), pick()), universe, 1))
	}
	if got := sum.Mean(); got < 0.45 || got > 0.55 {
		t.Fatalf("simulated RandomServer-1 unfairness = %v, want ~0.5", got)
	}
}
