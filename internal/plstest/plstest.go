// Package plstest is a cluster-wide invariant checker for the
// placement schemes: given a snapshot of every server's local state
// for a key and the key's placement config, it verifies the structural
// invariants each scheme promises (set-size bounds, Round-y position
// windows and agreement, Hash-y ring ownership, partition homing) and,
// separately, the coverage a fully repaired cluster must exhibit
// (replication degree restored on every alive server).
//
// The split matters: Check holds at every instant of a correct
// execution — mid-churn, mid-repair, with failed servers carrying
// frozen state — while CheckCoverage only holds at quiescence, after
// updates have landed everywhere they should (or an anti-entropy sweep
// has re-replicated what churn destroyed). Repair tests assert both
// after every sweep; the existing churn/replace tests use Check plus
// the scheme-appropriate coverage claims.
package plstest

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/entry"
	"repro/internal/node"
	"repro/internal/topo"
	"repro/internal/wire"
)

// ServerState is one server's observed local state for a key.
type ServerState struct {
	// Alive reports whether the server was operational when observed;
	// dead servers' frozen state is exempt from coverage claims.
	Alive bool
	// Set is the server's local entry set.
	Set *entry.Set
	// Positions is the Round-y position map (empty for other schemes).
	Positions map[entry.Entry]int
	// HCount is the RandomServer-x system-size counter.
	HCount int
	// Head and Tail are the Round-y coordinator counters.
	Head, Tail int
}

// View is a consistent observation of one key across a cluster.
type View struct {
	Key     string
	Config  wire.Config
	Servers []ServerState
	// Topology is the cluster's zone topology, nil without one. With
	// Config.ZoneSpread set, Hash-y/MultiProbe-y home checks resolve
	// through it exactly as the executors do (node.HomesFor).
	Topology *topo.Topology
}

// Observe snapshots one key across every server of a cluster. It reads
// node state directly (never the transport), so observing perturbs
// neither message counters nor RNG streams.
func Observe(c *cluster.Cluster, key string, cfg wire.Config) View {
	v := View{Key: key, Config: cfg, Servers: make([]ServerState, c.N()), Topology: c.Topology()}
	for i := 0; i < c.N(); i++ {
		nd := c.Node(i)
		head, tail := nd.Counters(key)
		v.Servers[i] = ServerState{
			Alive:     c.Alive(i),
			Set:       nd.LocalSet(key),
			Positions: nd.Positions(key),
			HCount:    nd.SystemCount(key),
			Head:      head,
			Tail:      tail,
		}
	}
	return v
}

// coordinators mirrors the executor's rule: at least one.
func coordinators(cfg wire.Config) int {
	if cfg.Coordinators > 1 {
		return cfg.Coordinators
	}
	return 1
}

// inWindow reports whether server id is one of the y consecutive homes
// of Round-y position pos in a cluster of n.
func inWindow(id, pos, y, n int) bool {
	for j := 0; j < y && j < n; j++ {
		if (pos+j)%n == id {
			return true
		}
	}
	return false
}

// Check verifies the structural invariants that must hold at every
// instant: no server stores an entry outside live (no resurrection —
// pass nil to skip when recovered-stale servers are in play), subset
// schemes respect their x bound, every Round-y entry sits inside its
// position's server window with positions agreeing across servers, and
// Hash-y / KeyPartition entries sit only on their assigned servers. It
// returns one error per violation, in deterministic order.
func (v View) Check(live *entry.Set) []error {
	var errs []error
	n := len(v.Servers)
	cfg := v.Config
	// Cross-server Round-y position agreement.
	agreed := make(map[entry.Entry]int)
	agreedBy := make(map[entry.Entry]int)
	for i, sv := range v.Servers {
		for _, m := range sv.Set.Members() {
			if live != nil && !live.Contains(m) {
				errs = append(errs, fmt.Errorf("key %q: server %d stores entry %q not in the live set", v.Key, i, m))
			}
		}
		switch cfg.Scheme {
		case wire.Fixed, wire.RandomServer:
			if sv.Set.Len() > cfg.X {
				errs = append(errs, fmt.Errorf("key %q: server %d stores %d entries, above the x=%d bound", v.Key, i, sv.Set.Len(), cfg.X))
			}
		case wire.RoundRobin:
			for _, m := range sv.Set.Members() {
				pos, ok := sv.Positions[m]
				if !ok {
					errs = append(errs, fmt.Errorf("key %q: server %d stores Round-y entry %q without a position", v.Key, i, m))
					continue
				}
				if pos < 0 {
					errs = append(errs, fmt.Errorf("key %q: server %d entry %q has negative position %d", v.Key, i, m, pos))
					continue
				}
				if !inWindow(i, pos, cfg.Y, n) {
					errs = append(errs, fmt.Errorf("key %q: server %d stores entry %q at position %d outside its window (y=%d, n=%d)", v.Key, i, m, pos, cfg.Y, n))
				}
				if prev, ok := agreed[m]; ok {
					if prev != pos {
						errs = append(errs, fmt.Errorf("key %q: entry %q position disagrees: server %d says %d, server %d says %d", v.Key, m, agreedBy[m], prev, i, pos))
					}
				} else {
					agreed[m] = pos
					agreedBy[m] = i
				}
			}
			if i < coordinators(cfg) && sv.Head > sv.Tail {
				errs = append(errs, fmt.Errorf("key %q: coordinator %d has head %d > tail %d", v.Key, i, sv.Head, sv.Tail))
			}
		case wire.Hash, wire.MultiProbe:
			for _, m := range sv.Set.Members() {
				home := false
				for _, t := range node.HomesFor(string(m), cfg, n, v.Topology) {
					if t == i {
						home = true
						break
					}
				}
				if !home {
					errs = append(errs, fmt.Errorf("key %q: server %d stores entry %q outside its %v assignment", v.Key, i, m, cfg.Scheme))
				}
			}
		case wire.KeyPartition:
			if sv.Set.Len() > 0 && i != node.PartitionServer(v.Key, n) {
				errs = append(errs, fmt.Errorf("key %q: server %d stores %d entries but the partition home is server %d", v.Key, i, sv.Set.Len(), node.PartitionServer(v.Key, n)))
			}
		}
	}
	return errs
}

// CheckCoverage verifies the replication degree a quiescent, fully
// repaired cluster must exhibit for the live entry population: every
// alive server holds what its scheme assigns it. It assumes no
// resurrection (run Check first) and, for the subset schemes, that the
// population was built without un-refilled deletes (the cushion
// semantics of RandomServer-x legitimately dip below x after deletes;
// only kill/replace churn is a repairable deficit).
func (v View) CheckCoverage(live *entry.Set) []error {
	var errs []error
	n := len(v.Servers)
	cfg := v.Config
	want := live.Len()
	switch cfg.Scheme {
	case wire.FullReplication:
		for i, sv := range v.Servers {
			if !sv.Alive {
				continue
			}
			for _, m := range live.Members() {
				if !sv.Set.Contains(m) {
					errs = append(errs, fmt.Errorf("key %q: alive server %d is missing entry %q (full replication)", v.Key, i, m))
				}
			}
		}
	case wire.Fixed:
		size := min(cfg.X, want)
		var ref *ServerState
		refID := -1
		for i := range v.Servers {
			sv := &v.Servers[i]
			if !sv.Alive {
				continue
			}
			if sv.Set.Len() != size {
				errs = append(errs, fmt.Errorf("key %q: alive server %d holds %d entries, want min(x, live)=%d", v.Key, i, sv.Set.Len(), size))
			}
			if ref == nil {
				ref, refID = sv, i
				continue
			}
			for _, m := range sv.Set.Members() {
				if !ref.Set.Contains(m) {
					errs = append(errs, fmt.Errorf("key %q: Fixed-x sets diverge: server %d holds %q, server %d does not", v.Key, i, m, refID))
				}
			}
		}
	case wire.RandomServer:
		size := min(cfg.X, want)
		for i, sv := range v.Servers {
			if !sv.Alive {
				continue
			}
			if sv.Set.Len() != size {
				errs = append(errs, fmt.Errorf("key %q: alive server %d holds %d entries, want min(x, live)=%d", v.Key, i, sv.Set.Len(), size))
			}
			if sv.HCount != want {
				errs = append(errs, fmt.Errorf("key %q: alive server %d system count %d, want %d", v.Key, i, sv.HCount, want))
			}
		}
	case wire.RoundRobin:
		// Positions agreed across servers (Check verifies); gather the
		// alive cluster's view of each live entry's position.
		pos := make(map[entry.Entry]int)
		for i := range v.Servers {
			sv := &v.Servers[i]
			if !sv.Alive {
				continue
			}
			for m, p := range sv.Positions {
				if sv.Set.Contains(m) {
					pos[m] = p
				}
			}
		}
		for _, m := range live.Members() {
			p, ok := pos[m]
			if !ok {
				errs = append(errs, fmt.Errorf("key %q: live entry %q is not stored on any alive server (lost)", v.Key, m))
				continue
			}
			for i, sv := range v.Servers {
				if !sv.Alive || !inWindow(i, p, cfg.Y, n) {
					continue
				}
				if !sv.Set.Contains(m) {
					errs = append(errs, fmt.Errorf("key %q: alive server %d is missing entry %q at position %d (window y=%d)", v.Key, i, m, p, cfg.Y))
				}
			}
		}
	case wire.Hash, wire.MultiProbe:
		for _, m := range live.Members() {
			stored := false
			for _, t := range node.HomesFor(string(m), cfg, n, v.Topology) {
				sv := v.Servers[t]
				if !sv.Alive {
					continue
				}
				if sv.Set.Contains(m) {
					stored = true
				} else {
					errs = append(errs, fmt.Errorf("key %q: alive server %d is missing entry %q (%v home)", v.Key, t, m, cfg.Scheme))
				}
			}
			if !stored {
				errs = append(errs, fmt.Errorf("key %q: live entry %q is not stored on any alive %v home (lost)", v.Key, m, cfg.Scheme))
			}
		}
	case wire.KeyPartition:
		home := node.PartitionServer(v.Key, n)
		if v.Servers[home].Alive {
			for _, m := range live.Members() {
				if !v.Servers[home].Set.Contains(m) {
					errs = append(errs, fmt.Errorf("key %q: partition home %d is missing entry %q", v.Key, home, m))
				}
			}
		}
	}
	return errs
}

// Assert fails the test with every violation in errs, prefixed by a
// caller-supplied context string (e.g. "round 3, post-sweep").
func Assert(t testing.TB, context string, errs []error) {
	t.Helper()
	for _, err := range errs {
		t.Errorf("%s: %v", context, err)
	}
}
