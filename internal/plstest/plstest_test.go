package plstest

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/entry"
	"repro/internal/node"
	"repro/internal/stats"
	"repro/internal/wire"
)

func liveSet(entries ...string) *entry.Set {
	s := entry.NewSet(len(entries))
	for _, e := range entries {
		s.Add(entry.Entry(e))
	}
	return s
}

func server(alive bool, entries ...string) ServerState {
	return ServerState{Alive: alive, Set: liveSet(entries...), Positions: map[entry.Entry]int{}}
}

func hasErr(errs []error, substr string) bool {
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			return true
		}
	}
	return false
}

// A healthy, fully placed cluster must pass both checks for every
// scheme end to end (Observe + Check + CheckCoverage).
func TestChecksPassOnHealthyCluster(t *testing.T) {
	h := make([]string, 30)
	live := entry.NewSet(len(h))
	for i, v := range entry.Synthetic(len(h)) {
		h[i] = string(v)
		live.Add(v)
	}
	for _, cfg := range []wire.Config{
		{Scheme: wire.FullReplication},
		{Scheme: wire.Fixed, X: 10},
		{Scheme: wire.RandomServer, X: 10},
		{Scheme: wire.RoundRobin, Y: 3, Coordinators: 2},
		{Scheme: wire.Hash, Y: 2, Seed: 99},
		{Scheme: wire.KeyPartition},
	} {
		t.Run(cfg.Scheme.String(), func(t *testing.T) {
			c := cluster.New(6, stats.NewRNG(7))
			initial := 1 % c.N()
			if cfg.Scheme == wire.RoundRobin {
				initial = 0
			}
			reply := c.Node(initial).Handle(context.Background(),
				wire.Place{Key: "k", Config: cfg, Entries: h})
			if ack, ok := reply.(wire.Ack); !ok || ack.Err != "" {
				t.Fatalf("place failed: %+v", reply)
			}
			v := Observe(c, "k", cfg)
			Assert(t, "structural", v.Check(live))
			Assert(t, "coverage", v.CheckCoverage(live))
		})
	}
}

// Hand-built views exercise each violation the checker must catch —
// the checker itself needs a negative test or silent under-replication
// could silently pass again, one level up.
func TestCheckDetectsViolations(t *testing.T) {
	live := liveSet("v1", "v2")

	t.Run("resurrection", func(t *testing.T) {
		v := View{Key: "k", Config: wire.Config{Scheme: wire.FullReplication},
			Servers: []ServerState{server(true, "v1", "ghost")}}
		if !hasErr(v.Check(live), "not in the live set") {
			t.Fatal("resurrected entry not detected")
		}
	})

	t.Run("fixed-over-x", func(t *testing.T) {
		v := View{Key: "k", Config: wire.Config{Scheme: wire.Fixed, X: 1},
			Servers: []ServerState{server(true, "v1", "v2")}}
		if !hasErr(v.Check(live), "above the x=1 bound") {
			t.Fatal("x overflow not detected")
		}
	})

	t.Run("round-window-and-agreement", func(t *testing.T) {
		cfg := wire.Config{Scheme: wire.RoundRobin, Y: 1}
		// v1 at position 0 belongs on server 0 only (y=1, n=2).
		misplaced := server(true, "v1")
		misplaced.Positions = map[entry.Entry]int{"v1": 0}
		ok := server(true, "v1")
		ok.Positions = map[entry.Entry]int{"v1": 1}
		v := View{Key: "k", Config: cfg, Servers: []ServerState{ok, misplaced}}
		errs := v.Check(live)
		if !hasErr(errs, "outside its window") {
			t.Fatalf("window violation not detected: %v", errs)
		}
		if !hasErr(errs, "position disagrees") {
			t.Fatalf("position disagreement not detected: %v", errs)
		}
		// An entry with no recorded position at all.
		nopos := server(true, "v2")
		v = View{Key: "k", Config: cfg, Servers: []ServerState{nopos}}
		if !hasErr(v.Check(live), "without a position") {
			t.Fatal("missing position not detected")
		}
	})

	t.Run("hash-ownership", func(t *testing.T) {
		cfg := wire.Config{Scheme: wire.Hash, Y: 1, Seed: 5}
		n := 4
		owner := node.HashAssign("v1", 1, n, 5)[0]
		wrong := (owner + 1) % n
		servers := make([]ServerState, n)
		for i := range servers {
			servers[i] = server(true)
		}
		servers[wrong] = server(true, "v1")
		v := View{Key: "k", Config: cfg, Servers: servers}
		if !hasErr(v.Check(live), "outside its Hash-y assignment") {
			t.Fatal("hash misplacement not detected")
		}
	})

	t.Run("partition-homing", func(t *testing.T) {
		n := 4
		home := node.PartitionServer("k", n)
		servers := make([]ServerState, n)
		for i := range servers {
			servers[i] = server(true)
		}
		servers[(home+1)%n] = server(true, "v1")
		v := View{Key: "k", Config: wire.Config{Scheme: wire.KeyPartition}, Servers: servers}
		if !hasErr(v.Check(live), "partition home") {
			t.Fatal("partition misplacement not detected")
		}
	})
}

// Coverage violations: an empty replacement server must fail coverage
// for every scheme that can repair it — this is exactly the deficit
// the anti-entropy daemon exists to close.
func TestCheckCoverageDetectsDeficit(t *testing.T) {
	live := liveSet("v1", "v2")

	t.Run("full-missing", func(t *testing.T) {
		v := View{Key: "k", Config: wire.Config{Scheme: wire.FullReplication},
			Servers: []ServerState{server(true, "v1", "v2"), server(true)}}
		if !hasErr(v.CheckCoverage(live), "missing entry") {
			t.Fatal("missing replica not detected")
		}
	})

	t.Run("fixed-divergence", func(t *testing.T) {
		v := View{Key: "k", Config: wire.Config{Scheme: wire.Fixed, X: 2},
			Servers: []ServerState{server(true, "v1", "v2"), server(true)}}
		errs := v.CheckCoverage(live)
		if !hasErr(errs, "want min(x, live)=2") {
			t.Fatalf("underfilled Fixed set not detected: %v", errs)
		}
	})

	t.Run("rs-size-and-hcount", func(t *testing.T) {
		sv := server(true, "v1")
		sv.HCount = 1
		v := View{Key: "k", Config: wire.Config{Scheme: wire.RandomServer, X: 2},
			Servers: []ServerState{sv}}
		errs := v.CheckCoverage(live)
		if !hasErr(errs, "want min(x, live)=2") || !hasErr(errs, "system count 1, want 2") {
			t.Fatalf("RS deficit not detected: %v", errs)
		}
	})

	t.Run("round-lost-and-missing", func(t *testing.T) {
		cfg := wire.Config{Scheme: wire.RoundRobin, Y: 2}
		a := server(true, "v1")
		a.Positions = map[entry.Entry]int{"v1": 0}
		b := server(true) // should hold v1 too (window of position 0, y=2)
		v := View{Key: "k", Config: cfg, Servers: []ServerState{a, b}}
		if !hasErr(v.CheckCoverage(liveSet("v1")), "missing entry") {
			t.Fatal("missing window replica not detected")
		}
		// No alive server holds v2 at all: it is lost.
		if !hasErr(v.CheckCoverage(live), "lost") {
			t.Fatal("lost entry not detected")
		}
	})

	t.Run("dead-servers-exempt", func(t *testing.T) {
		v := View{Key: "k", Config: wire.Config{Scheme: wire.FullReplication},
			Servers: []ServerState{server(true, "v1", "v2"), server(false)}}
		if errs := v.CheckCoverage(live); len(errs) != 0 {
			t.Fatalf("dead server charged with coverage: %v", errs)
		}
	})
}
