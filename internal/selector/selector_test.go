package selector

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/transport"
	"repro/internal/wire"
)

func base(n int) []int {
	b := make([]int, n)
	for i := range b {
		b[i] = i
	}
	return b
}

// A cold selector must return every order untouched (and the very same
// backing semantics a nil selector gives), so seeded runs stay
// byte-identical until real signal exists.
func TestColdSelectorIsIdentity(t *testing.T) {
	s := New(8, Options{})
	in := []int{5, 2, 7, 0, 1, 6, 3, 4}
	for _, got := range [][]int{
		s.Order("k", in),
		s.OrderMulti([]string{"a", "b"}, in),
		s.OrderGlobal(in),
	} {
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("cold order = %v, want %v", got, in)
		}
	}
	var nilSel *Selector
	if got := nilSel.Order("k", in); !reflect.DeepEqual(got, in) {
		t.Fatalf("nil selector order = %v, want %v", got, in)
	}
}

func TestOrderPrefersCachedServers(t *testing.T) {
	s := New(6, Options{})
	s.RecordAnswer("k", 4, 3)
	s.RecordAnswer("k", 2, 9) // fatter answer: must lead
	got := s.Order("k", base(6))
	want := []int{2, 4, 0, 1, 3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	// A different key has no cached route and keeps base order.
	if got := s.Order("other", base(6)); !reflect.DeepEqual(got, base(6)) {
		t.Fatalf("uncached key order = %v, want identity", got)
	}
}

// With a topology attached, healthy servers sort nearest-zone-first,
// stable within a distance band, and the ordering applies even with no
// observations (the selector is never cold once zone-aware).
func TestZoneOrderingPrefersNearServers(t *testing.T) {
	tp, err := topo.Parse("2x2x2", 8) // 2 regions, 2 DCs each, 2 racks each
	if err != nil {
		t.Fatal(err)
	}
	s := New(8, Options{})
	s.SetTopology(tp, tp.ZoneOf(0)) // client co-located with server 0's rack
	got := s.Order("k", base(8))
	// Round-robin rack assignment: server 0 shares rack with nobody at
	// n=8 over 8 racks... each server has its own rack. Distances from
	// rack of server 0: same-rack {0}, same-DC {rack sibling}, same
	// region, cross region. Verify monotone non-decreasing distance.
	last := -1
	for _, sv := range got {
		d := tp.DistZone(tp.ZoneOf(0), sv)
		if d < last {
			t.Fatalf("order %v not sorted by zone distance (server %d dist %d after dist %d)", got, sv, d, last)
		}
		last = d
	}
	if got[0] != 0 {
		t.Fatalf("order %v: co-located server 0 must lead", got)
	}
	// Stability: equidistant servers keep base relative order.
	seen := map[int][]int{}
	for _, sv := range got {
		d := tp.DistZone(tp.ZoneOf(0), sv)
		seen[d] = append(seen[d], sv)
	}
	for d, svs := range seen {
		for i := 1; i < len(svs); i++ {
			if svs[i] < svs[i-1] {
				t.Fatalf("distance band %d order %v not stable wrt base", d, svs)
			}
		}
	}
}

// Zone ordering ranks below health signal: an open-circuit same-rack
// server sorts behind healthy far servers, and a cached fat answer
// beats proximity.
func TestZoneOrderingYieldsToHealthAndCache(t *testing.T) {
	tp, err := topo.Parse("2x1x2", 4)
	if err != nil {
		t.Fatal(err)
	}
	s := New(4, Options{})
	s.SetTopology(tp, tp.ZoneOf(0))
	for i := 0; i < 10; i++ {
		s.RecordFailure(0) // same-zone server goes open
	}
	got := s.Order("k", base(4))
	if got[len(got)-1] != 0 {
		t.Fatalf("order %v: open same-zone server 0 must sort last", got)
	}
	// A cached answer on the farthest server leads everything.
	s2 := New(4, Options{})
	s2.SetTopology(tp, tp.ZoneOf(0))
	far := 3
	s2.RecordAnswer("k", far, 5)
	if got := s2.Order("k", base(4)); got[0] != far {
		t.Fatalf("order %v: cached server %d must lead despite distance", got, far)
	}
}

func TestNegativeEntriesDemoteAndInvalidate(t *testing.T) {
	s := New(4, Options{})
	s.RecordAnswer("k", 1, 0) // negative: answered empty
	got := s.Order("k", base(4))
	want := []int{0, 2, 3, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	// add/delete invalidates negatives: order reverts to base.
	s.InvalidateNegatives("k")
	if got := s.Order("k", base(4)); !reflect.DeepEqual(got, base(4)) {
		t.Fatalf("after InvalidateNegatives order = %v, want identity", got)
	}
	// A positive answer overwrites a negative verdict.
	s.RecordAnswer("k", 1, 0)
	s.RecordAnswer("k", 1, 5)
	if got := s.Order("k", base(4)); !reflect.DeepEqual(got, []int{1, 0, 2, 3}) {
		t.Fatalf("after positive overwrite order = %v", got)
	}
}

func TestFailureStreakOpensAndHalfOpenRecovers(t *testing.T) {
	now := time.Unix(1000, 0)
	reg := telemetry.NewRegistry()
	m := telemetry.NewSelectorMetrics(reg)
	s := New(4, Options{
		FailThreshold: 3,
		ProbeAfter:    time.Second,
		Metrics:       m,
		Now:           func() time.Time { return now },
	})
	s.RecordFailure(1)
	s.RecordFailure(1)
	if got := s.Order("k", base(4)); !reflect.DeepEqual(got, base(4)) {
		t.Fatalf("below threshold, order = %v, want identity", got)
	}
	s.RecordFailure(1) // crosses the threshold
	if got := s.Order("k", base(4)); !reflect.DeepEqual(got, []int{0, 2, 3, 1}) {
		t.Fatalf("open server not demoted: %v", got)
	}
	if m.Demotions.Value() != 1 {
		t.Fatalf("demotions = %d, want 1", m.Demotions.Value())
	}
	if h := s.Health()[1]; !h.Open || h.ConsecFails != 3 {
		t.Fatalf("health = %+v, want open with 3 fails", h)
	}

	// Before ProbeAfter: still fully demoted, no trial granted.
	if m.HalfOpenProbes.Value() != 0 {
		t.Fatalf("probe granted too early")
	}
	// After ProbeAfter the server gets one half-open trial; it sorts
	// ahead of nothing but is no longer unconditionally last...
	now = now.Add(2 * time.Second)
	_ = s.Order("k", base(4))
	if m.HalfOpenProbes.Value() != 1 {
		t.Fatalf("half-open probes = %d, want 1", m.HalfOpenProbes.Value())
	}
	// ...and a second order inside the window does not grant another.
	_ = s.Order("k", base(4))
	if m.HalfOpenProbes.Value() != 1 {
		t.Fatalf("second trial granted inside the window")
	}

	// A success closes the server entirely.
	s.RecordSuccess(1, time.Millisecond)
	if h := s.Health()[1]; h.Open || h.ConsecFails != 0 {
		t.Fatalf("health after success = %+v, want closed", h)
	}
}

func TestSlowServerSortsBehindFastPeers(t *testing.T) {
	s := New(3, Options{SlowFactor: 2})
	s.RecordSuccess(0, time.Millisecond)
	s.RecordSuccess(2, 10*time.Millisecond) // 10x the best: slow tier
	got := s.Order("k", base(3))
	// Server 1 has no samples: neutral, stays healthy tier with 0.
	want := []int{0, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if got := s.Order("k", []int{2, 1, 0}); !reflect.DeepEqual(got, []int{1, 0, 2}) {
		t.Fatalf("order = %v, want slow server last", got)
	}
}

func TestRouteCacheLRUBound(t *testing.T) {
	s := New(2, Options{CacheKeys: 3})
	for i := 0; i < 5; i++ {
		s.RecordAnswer(fmt.Sprintf("k%d", i), 1, 2)
	}
	if got := s.CachedKeys(); got != 3 {
		t.Fatalf("cached keys = %d, want 3", got)
	}
	// The oldest keys were evicted: their order is identity again even
	// though the cache is warm.
	if got := s.Order("k0", base(2)); !reflect.DeepEqual(got, base(2)) {
		t.Fatalf("evicted key order = %v, want identity", got)
	}
	// The newest survived.
	if got := s.Order("k4", base(2)); !reflect.DeepEqual(got, []int{1, 0}) {
		t.Fatalf("fresh key order = %v, want cached first", got)
	}
}

func TestCachePerKeyServerBound(t *testing.T) {
	s := New(8, Options{CacheServersPerKey: 2})
	s.RecordAnswer("k", 0, 1)
	s.RecordAnswer("k", 1, 5)
	s.RecordAnswer("k", 2, 3)
	got := s.Order("k", base(8))
	// Only the two largest answers are remembered: 1 (5 entries) then
	// 2 (3 entries); server 0 fell off the bounded list.
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("order = %v, want servers 1,2 first", got)
	}
}

func TestOrderMultiPoolsVotes(t *testing.T) {
	s := New(4, Options{})
	s.RecordAnswer("a", 3, 2)
	s.RecordAnswer("b", 3, 2)
	s.RecordAnswer("b", 1, 3)
	// Server 3 has 4 pooled entries across keys, server 1 has 3.
	got := s.OrderMulti([]string{"a", "b"}, base(4))
	if got[0] != 3 || got[1] != 1 {
		t.Fatalf("multi order = %v, want 3,1 first", got)
	}
	// Negative only when every cached pending key says negative.
	s.RecordAnswer("a", 0, 0)
	s.RecordAnswer("b", 0, 0)
	got = s.OrderMulti([]string{"a", "b"}, base(4))
	if got[len(got)-1] != 0 {
		t.Fatalf("multi order = %v, want 0 last", got)
	}
}

func TestInvalidateDropsKey(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := telemetry.NewSelectorMetrics(reg)
	s := New(4, Options{Metrics: m})
	s.RecordAnswer("k", 2, 5)
	s.Invalidate("k")
	// Cache is now empty and no scoreboard signal exists: fully cold.
	if got := s.Order("k", base(4)); !reflect.DeepEqual(got, base(4)) {
		t.Fatalf("order after invalidate = %v, want identity", got)
	}
	if m.Invalidations.Value() != 1 {
		t.Fatalf("invalidations = %d, want 1", m.Invalidations.Value())
	}
	s.Invalidate("k") // absent: not counted
	if m.Invalidations.Value() != 1 {
		t.Fatalf("absent invalidate counted")
	}
}

// Regression: after a membership resize — including a same-n
// renumbering, where a drain+join leave the cluster size unchanged but
// every id above the leaver now names a different server — the warm
// route cache must be flushed. A surviving cached entry would route a
// key's first probe to a renumbered slot.
func TestResizeFlushesRouteCacheOnRenumber(t *testing.T) {
	for _, tc := range []struct {
		name string
		from int
		to   int
	}{
		{"shrink", 5, 4},
		{"same-n renumber", 5, 5},
		{"grow", 5, 6},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := New(tc.from, Options{})
			// Warm the cache: server 4 (the highest slot — the one a drain
			// renumbers or removes) answered key k with a fat answer, and
			// server 1 answered empty.
			s.RecordAnswer("k", 4, 9)
			s.RecordAnswer("k", 1, 0)
			if got := s.Order("k", base(tc.from))[0]; got != 4 {
				t.Fatalf("warm cache order leads with %d, want 4", got)
			}
			epochBefore := s.FailureEpoch()
			s.Resize(tc.to)
			if got := s.CachedKeys(); got != 0 {
				t.Fatalf("%d keys survived Resize(%d→%d), want 0", got, tc.from, tc.to)
			}
			// The cache no longer votes: order over the new id space is the
			// seeded base untouched, so no probe targets a renumbered slot.
			if got := s.Order("k", base(tc.to)); !reflect.DeepEqual(got, base(tc.to)) {
				t.Fatalf("post-resize order = %v, want identity", got)
			}
			if got := s.FailureEpoch(); got <= epochBefore {
				t.Fatalf("FailureEpoch did not advance across Resize: %d -> %d", epochBefore, got)
			}
		})
	}
}

// scriptCaller fails or succeeds per server for the observe middleware.
type scriptCaller struct {
	n    int
	down map[int]bool
}

func (c *scriptCaller) NumServers() int { return c.n }

func (c *scriptCaller) Call(ctx context.Context, server int, _ wire.Message) (wire.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.down[server] {
		return nil, fmt.Errorf("%w: server %d", transport.ErrServerDown, server)
	}
	return wire.Ack{}, nil
}

func TestObserveFeedsScoreboard(t *testing.T) {
	s := New(3, Options{FailThreshold: 2})
	obs := Observe(&scriptCaller{n: 3, down: map[int]bool{1: true}}, s)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := obs.Call(ctx, 1, wire.Ack{}); !errors.Is(err, transport.ErrServerDown) {
			t.Fatalf("want ErrServerDown, got %v", err)
		}
	}
	if _, err := obs.Call(ctx, 0, wire.Ack{}); err != nil {
		t.Fatal(err)
	}
	h := s.Health()
	if !h[1].Open {
		t.Fatalf("server 1 not opened: %+v", h[1])
	}
	if h[0].Samples != 1 || h[0].EWMA <= 0 {
		t.Fatalf("server 0 success not recorded: %+v", h[0])
	}
	// A cancelled context is attributed to neither side.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	before := s.Health()[2]
	_, _ = obs.Call(cancelled, 2, wire.Ack{})
	if after := s.Health()[2]; after != before {
		t.Fatalf("context error recorded: %+v -> %+v", before, after)
	}
	// Observe with a nil selector is the identity middleware.
	inner := &scriptCaller{n: 3}
	if got := Observe(inner, nil); got != transport.Caller(inner) {
		t.Fatalf("Observe(nil selector) should return inner")
	}
}

// The repair daemon's health contract: open circuits classify as
// presumed dead, and the failure epoch advances monotonically on every
// recorded failure so converged sweeps can be skipped.
func TestPresumedDeadAndFailureEpoch(t *testing.T) {
	s := New(4, Options{FailThreshold: 2})
	if got := s.FailureEpoch(); got != 0 {
		t.Fatalf("cold FailureEpoch = %d, want 0", got)
	}
	if dead := s.PresumedDead(); len(dead) != 4 {
		t.Fatalf("PresumedDead len = %d, want 4", len(dead))
	} else {
		for i, d := range dead {
			if d {
				t.Fatalf("cold server %d presumed dead", i)
			}
		}
	}
	s.RecordFailure(2)
	if got := s.FailureEpoch(); got != 1 {
		t.Fatalf("FailureEpoch after one failure = %d, want 1", got)
	}
	if s.PresumedDead()[2] {
		t.Fatal("server 2 presumed dead below FailThreshold")
	}
	s.RecordFailure(2)
	if !s.PresumedDead()[2] {
		t.Fatal("server 2 not presumed dead after crossing FailThreshold")
	}
	if got := s.FailureEpoch(); got != 2 {
		t.Fatalf("FailureEpoch = %d, want 2", got)
	}
	// Recovery closes the circuit but never rewinds the epoch.
	s.RecordSuccess(2, time.Millisecond)
	if s.PresumedDead()[2] {
		t.Fatal("server 2 still presumed dead after success")
	}
	if got := s.FailureEpoch(); got != 2 {
		t.Fatalf("FailureEpoch rewound to %d after success", got)
	}
}
