// Package selector implements failure-aware server selection for the
// strategy drivers: a per-server scoreboard (EWMA latency, consecutive
// failure streaks, half-open recovery probes) fed by a transport
// middleware hook, plus a bounded per-key routing cache remembering
// which servers answered a key recently and which came back empty.
//
// The paper's client lookup cost (Sec. 4.2) is the expected number of
// servers contacted to collect t of h entries; the scoreboard and cache
// shrink it by trying a key's known-good servers first and demoting
// servers that are failing or slow, in the spirit of multi-probe
// load/latency-aware probe ordering. Ordering is a pure reshuffle of
// the driver's seeded random permutation: a cold selector (no recorded
// outcomes, empty cache) returns the permutation unchanged, so seeded
// experiment outputs stay byte-identical until real signal exists.
package selector

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/topo"
)

// Options tune a Selector. The zero value of every field selects the
// documented default.
type Options struct {
	// Alpha is the EWMA smoothing factor for per-server latency, in
	// (0, 1]. Default 0.25.
	Alpha float64
	// FailThreshold is how many consecutive failures open (demote) a
	// server. Default 3.
	FailThreshold int
	// ProbeAfter is how long an open server waits before the selector
	// grants one half-open trial probe. Default 1s.
	ProbeAfter time.Duration
	// SlowFactor demotes a healthy server behind its healthy peers when
	// its EWMA latency exceeds SlowFactor times the best healthy EWMA.
	// Default 2.
	SlowFactor float64
	// CacheKeys bounds the routing cache: least-recently-used keys are
	// evicted beyond this many. Default 4096.
	CacheKeys int
	// CacheServersPerKey bounds how many answering servers are
	// remembered per key (the largest answers win). Default 4.
	CacheServersPerKey int
	// Metrics receives cache hit/miss, demotion, and half-open probe
	// counters; nil records nothing.
	Metrics *telemetry.SelectorMetrics
	// Now overrides the clock for half-open timing (tests). Default
	// time.Now.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.25
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.ProbeAfter <= 0 {
		o.ProbeAfter = time.Second
	}
	if o.SlowFactor <= 1 {
		o.SlowFactor = 2
	}
	if o.CacheKeys <= 0 {
		o.CacheKeys = 4096
	}
	if o.CacheServersPerKey <= 0 {
		o.CacheServersPerKey = 4
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// serverState is one server's scoreboard row.
type serverState struct {
	ewma        float64 // nanoseconds; meaningful only when samples > 0
	samples     int64
	consecFails int
	open        bool // demoted after FailThreshold consecutive failures
	lastFail    time.Time
	probing     bool // a half-open trial has been granted and not resolved
	probedAt    time.Time
}

// Selector is safe for concurrent use; one instance serves every driver
// of a client (or the peer path of a server daemon).
type Selector struct {
	opt Options

	mu           sync.Mutex
	servers      []serverState
	observations int64 // outcomes recorded; 0 and an empty cache = cold
	failures     uint64
	cache        *routeCache

	// Zone awareness (SetTopology): with a topology and a client zone,
	// servers inside each tier are additionally ordered nearest zone
	// first, so lookups drain same-rack and same-DC replicas before
	// paying cross-region links. dists caches the per-server distance
	// from the client zone; nil means zone ordering is off and the
	// cold-path byte-identity guarantee applies unchanged.
	tp         *topo.Topology
	clientZone string
	dists      []int
}

// New returns a selector for a cluster of n servers.
func New(n int, opt Options) *Selector {
	if n <= 0 {
		panic(fmt.Sprintf("selector: New requires n > 0, got %d", n))
	}
	o := opt.withDefaults()
	return &Selector{
		opt:     o,
		servers: make([]serverState, n),
		cache:   newRouteCache(o.CacheKeys, o.CacheServersPerKey),
	}
}

// SetTopology enables zone-aware ordering: servers within each health
// tier are preferred nearest the given client zone first (same rack,
// then same DC, same region, cross-region), with base order preserved
// among equidistant servers. Passing a nil topology or an empty zone
// disables it. Zone ordering is deliberate signal, so once enabled the
// selector is never "cold": orders deviate from the seeded base even
// before any outcome is recorded — which is why topology-free runs
// (the golden-verified configuration) never call this.
func (s *Selector) SetTopology(tp *topo.Topology, clientZone string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tp = tp
	s.clientZone = clientZone
	s.recomputeDistsLocked()
}

// recomputeDistsLocked refreshes the per-server zone distance cache.
func (s *Selector) recomputeDistsLocked() {
	if s.tp == nil || s.clientZone == "" {
		s.dists = nil
		return
	}
	s.dists = make([]int, len(s.servers))
	for i := range s.dists {
		s.dists[i] = s.tp.DistZone(s.clientZone, i)
	}
}

// N returns the cluster size the selector tracks.
func (s *Selector) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.servers)
}

// Resize re-sizes the scoreboard after a membership change. Growth
// (a join: existing ids are stable) appends cold rows and keeps the
// accumulated signal; any other transition — shrinkage (a drain:
// higher ids shifted down) or a same-size renumbering (a drain paired
// with a join, or an id compaction) — resets the scoreboard, since
// per-id signal would be misattributed to the wrong servers. Every
// call, including same-n, drops the routing cache — cached server ids
// are stale the moment the member list changes, whether or not its
// length did — and advances the failure epoch so epoch-gated repair
// sweeps rescan under the new topology.
func (s *Selector) Resize(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("selector: Resize requires n > 0, got %d", n))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > len(s.servers) {
		grown := make([]serverState, n)
		copy(grown, s.servers)
		s.servers = grown
	} else {
		s.servers = make([]serverState, n)
	}
	s.cache = newRouteCache(s.opt.CacheKeys, s.opt.CacheServersPerKey)
	s.recomputeDistsLocked()
	s.failures++
}

// RecordSuccess feeds one successful call's latency into the
// scoreboard; it closes an open server (the half-open trial passed).
func (s *Selector) RecordSuccess(server int, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if server < 0 || server >= len(s.servers) {
		return
	}
	st := &s.servers[server]
	st.consecFails = 0
	st.open = false
	st.probing = false
	if st.samples == 0 {
		st.ewma = float64(d)
	} else {
		st.ewma = s.opt.Alpha*float64(d) + (1-s.opt.Alpha)*st.ewma
	}
	st.samples++
	s.observations++
}

// RecordFailure feeds one server-attributable failure (a call matching
// transport.ErrServerDown) into the scoreboard. Crossing FailThreshold
// consecutive failures demotes the server to the back of every order
// until a half-open probe succeeds.
func (s *Selector) RecordFailure(server int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if server < 0 || server >= len(s.servers) {
		return
	}
	st := &s.servers[server]
	st.consecFails++
	st.lastFail = s.opt.Now()
	st.probing = false
	if !st.open && st.consecFails >= s.opt.FailThreshold {
		st.open = true
		s.opt.Metrics.RecordDemotion()
	}
	s.observations++
	s.failures++
}

// RecordAnswer feeds the routing cache: server answered a lookup probe
// for key with the given number of entries. Zero entries is a negative
// entry — the server is live but useless for this key until an update
// invalidates the verdict.
func (s *Selector) RecordAnswer(key string, server int, entries int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if server < 0 || server >= len(s.servers) {
		return
	}
	s.cache.record(key, server, entries)
}

// Invalidate drops the whole routing-cache entry for a key (a place
// rewrote the key's entire layout).
func (s *Selector) Invalidate(key string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache.invalidate(key) {
		s.opt.Metrics.RecordInvalidation()
	}
}

// InvalidateNegatives drops a key's negative cache entries (an add or
// delete may have changed which servers hold entries, so "answered
// empty" is no longer trustworthy); positive entries self-correct on
// the next answer.
func (s *Selector) InvalidateNegatives(key string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache.invalidateNegatives(key) {
		s.opt.Metrics.RecordInvalidation()
	}
}

// tiers for order construction, best first.
const (
	tierCached   = 0 // cache says this server answered the key with entries
	tierHealthy  = 1 // no adverse signal
	tierSlow     = 2 // healthy but EWMA far behind the best healthy peer
	tierHalfOpen = 3 // open, but granted one recovery trial
	tierNegative = 4 // cache says the server answered this key empty
	tierOpen     = 5 // failing; skipped until everything better is exhausted
)

// Order reorders the driver's seeded permutation base for one key's
// lookup: cached answering servers first (largest recorded answers
// leading), then healthy servers, slow servers, half-open trials,
// negative-cached servers, and open servers last. Servers keep base's
// relative order inside each tier, and a cold selector returns base
// untouched — seeded runs only deviate once real signal exists. The
// returned slice is freshly allocated; base is never mutated.
func (s *Selector) Order(key string, base []int) []int {
	if s == nil {
		return base
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.coldLocked() {
		return base
	}
	pos, neg := s.cache.routes(key)
	if len(pos) > 0 {
		s.opt.Metrics.RecordHit()
	} else {
		s.opt.Metrics.RecordMiss()
	}
	return s.orderLocked(base, pos, neg)
}

// OrderMulti is Order for a batched lookup's pending key set: positive
// cache votes are pooled across the keys (a server's vote is its
// recorded answer size, summed), and a server is negative only if every
// pending key cached it negative.
func (s *Selector) OrderMulti(keys []string, base []int) []int {
	if s == nil {
		return base
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.coldLocked() {
		return base
	}
	votes := make(map[int]int)
	negCount := make(map[int]int)
	cachedKeys := 0
	for _, key := range keys {
		pos, neg := s.cache.routes(key)
		if len(pos) > 0 || len(neg) > 0 {
			cachedKeys++
		}
		for _, p := range pos {
			votes[p.server] += p.entries
		}
		for _, sv := range neg {
			negCount[sv]++
		}
	}
	if len(votes) > 0 {
		s.opt.Metrics.RecordHit()
	} else {
		s.opt.Metrics.RecordMiss()
	}
	pos := make([]posEntry, 0, len(votes))
	for sv, v := range votes {
		pos = append(pos, posEntry{server: sv, entries: v})
	}
	sortPos(pos)
	var neg []int
	for sv, c := range negCount {
		if _, alsoPos := votes[sv]; !alsoPos && cachedKeys > 0 && c == cachedKeys {
			neg = append(neg, sv)
		}
	}
	return s.orderLocked(base, pos, neg)
}

// OrderGlobal reorders base by scoreboard health only (no key, no
// cache): update routing and batch envelope delivery use it.
func (s *Selector) OrderGlobal(base []int) []int {
	if s == nil {
		return base
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.coldLocked() {
		return base
	}
	return s.orderLocked(base, nil, nil)
}

// coldLocked reports whether ordering has no signal to act on: nothing
// observed, nothing cached, and no zone distances. A cold selector
// returns the caller's base untouched (the byte-identity guarantee).
func (s *Selector) coldLocked() bool {
	return s.observations == 0 && s.cache.len() == 0 && s.dists == nil
}

// orderLocked builds the tiered order. pos is sorted by recorded answer
// size descending; neg lists servers cached negative for the key(s).
func (s *Selector) orderLocked(base []int, pos []posEntry, neg []int) []int {
	now := s.opt.Now()
	bestEwma := 0.0
	for i := range s.servers {
		st := &s.servers[i]
		if !st.open && st.samples > 0 && (bestEwma == 0 || st.ewma < bestEwma) {
			bestEwma = st.ewma
		}
	}
	inPos := make(map[int]int, len(pos)) // server -> rank in pos
	for rank, p := range pos {
		inPos[p.server] = rank
	}
	inNeg := make(map[int]bool, len(neg))
	for _, sv := range neg {
		inNeg[sv] = true
	}

	tierOf := func(server int) int {
		st := &s.servers[server]
		if st.open {
			if s.grantProbeLocked(st, now) {
				return tierHalfOpen
			}
			return tierOpen
		}
		if _, ok := inPos[server]; ok {
			return tierCached
		}
		if inNeg[server] {
			return tierNegative
		}
		if st.samples > 0 && bestEwma > 0 && st.ewma > s.opt.SlowFactor*bestEwma {
			return tierSlow
		}
		return tierHealthy
	}

	byTier := make([][]int, tierOpen+1)
	for _, server := range base {
		if server < 0 || server >= len(s.servers) {
			byTier[tierHealthy] = append(byTier[tierHealthy], server)
			continue
		}
		t := tierOf(server)
		byTier[t] = append(byTier[t], server)
	}
	// The cached tier orders by recorded answer size (rank in pos), not
	// base order: the fattest known answer is the cheapest first probe.
	cached := byTier[tierCached]
	sortByRank(cached, inPos)
	// Zone ordering: within every other tier, nearest zone first (the
	// cached tier's recorded-answer ranking wins over distance — a known
	// fat answer beats a near empty one). Stable, so equidistant servers
	// keep base's relative order.
	if s.dists != nil {
		for t := tierHealthy; t <= tierOpen; t++ {
			sortByDist(byTier[t], s.dists)
		}
	}

	out := make([]int, 0, len(base))
	for _, tier := range byTier {
		out = append(out, tier...)
	}
	return out
}

// grantProbeLocked decides whether an open server gets a half-open
// trial: one probe per ProbeAfter window since the last failure.
func (s *Selector) grantProbeLocked(st *serverState, now time.Time) bool {
	if now.Sub(st.lastFail) < s.opt.ProbeAfter {
		return false
	}
	if st.probing && now.Sub(st.probedAt) < s.opt.ProbeAfter {
		return false // an earlier grant is still outstanding
	}
	st.probing = true
	st.probedAt = now
	s.opt.Metrics.RecordHalfOpenProbe()
	return true
}

// ServerHealth is one server's scoreboard snapshot.
type ServerHealth struct {
	// EWMA is the smoothed call latency (0 until a success is recorded).
	EWMA time.Duration
	// Samples is the number of successes folded into EWMA.
	Samples int64
	// ConsecFails is the current failure streak.
	ConsecFails int
	// Open reports whether the server is demoted behind all others.
	Open bool
}

// Health snapshots the scoreboard, for admin gauges and tests.
func (s *Selector) Health() []ServerHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ServerHealth, len(s.servers))
	for i := range s.servers {
		st := &s.servers[i]
		out[i] = ServerHealth{
			EWMA:        time.Duration(st.ewma),
			Samples:     st.samples,
			ConsecFails: st.consecFails,
			Open:        st.open,
		}
	}
	return out
}

// PresumedDead classifies each server for the anti-entropy repair
// daemon: true means the circuit is open (FailThreshold consecutive
// server-down failures without a successful probe since), so repair
// planning should neither query nor push to it. The slice is a copy.
// Together with FailureEpoch this satisfies the node.RepairHealth
// contract.
func (s *Selector) PresumedDead() []bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]bool, len(s.servers))
	for i := range s.servers {
		out[i] = s.servers[i].open
	}
	return out
}

// FailureEpoch returns a monotone counter that advances on every
// recorded server-attributable failure. The repair daemon skips a
// sweep entirely — zero wire traffic — while the epoch matches the one
// it last converged at, so a healthy cluster pays nothing for having
// repair enabled.
func (s *Selector) FailureEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failures
}

// CachedKeys returns the number of keys currently in the routing cache.
func (s *Selector) CachedKeys() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.len()
}

// posEntry is one positive routing-cache record: server answered with
// this many entries last time.
type posEntry struct {
	server  int
	entries int
}

// sortPos orders positive entries by answer size descending, server id
// ascending for determinism. Insertion sort: lists are at most a few
// entries long.
func sortPos(pos []posEntry) {
	for i := 1; i < len(pos); i++ {
		for j := i; j > 0; j-- {
			a, b := pos[j-1], pos[j]
			if a.entries > b.entries || (a.entries == b.entries && a.server < b.server) {
				break
			}
			pos[j-1], pos[j] = b, a
		}
	}
}

// sortByRank orders servers by their rank in the positive list
// (insertion sort over a handful of entries).
func sortByRank(servers []int, rank map[int]int) {
	for i := 1; i < len(servers); i++ {
		for j := i; j > 0 && rank[servers[j]] < rank[servers[j-1]]; j-- {
			servers[j], servers[j-1] = servers[j-1], servers[j]
		}
	}
}

// sortByDist stably orders servers by zone distance ascending. Ids
// beyond the distance cache (a joiner the topology has not covered
// yet) count as maximally distant.
func sortByDist(servers []int, dists []int) {
	d := func(sv int) int {
		if sv < 0 || sv >= len(dists) {
			return topo.DistCrossRegion
		}
		return dists[sv]
	}
	for i := 1; i < len(servers); i++ {
		for j := i; j > 0 && d(servers[j]) < d(servers[j-1]); j-- {
			servers[j], servers[j-1] = servers[j-1], servers[j]
		}
	}
}

// routeCache is the bounded per-key routing cache: an LRU over keys,
// each remembering which servers answered (and how fully) and which
// answered empty. It is guarded by the owning Selector's mutex.
type routeCache struct {
	maxKeys, perKey int
	entries         map[string]*list.Element
	lru             *list.List // of *keyRoutes, front = most recent
}

type keyRoutes struct {
	key string
	pos []posEntry // sorted by entries descending, length <= perKey
	neg []int
}

func newRouteCache(maxKeys, perKey int) *routeCache {
	return &routeCache{
		maxKeys: maxKeys,
		perKey:  perKey,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

func (c *routeCache) len() int { return c.lru.Len() }

// touch returns the key's routes, creating and front-moving as needed.
func (c *routeCache) touch(key string, create bool) *keyRoutes {
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*keyRoutes)
	}
	if !create {
		return nil
	}
	kr := &keyRoutes{key: key}
	c.entries[key] = c.lru.PushFront(kr)
	for c.lru.Len() > c.maxKeys {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*keyRoutes).key)
	}
	return kr
}

func (c *routeCache) record(key string, server, entries int) {
	kr := c.touch(key, true)
	if entries <= 0 {
		// Negative: server answered but held nothing for this key.
		kr.pos = removePos(kr.pos, server)
		for _, sv := range kr.neg {
			if sv == server {
				return
			}
		}
		kr.neg = append(kr.neg, server)
		return
	}
	kr.neg = removeInt(kr.neg, server)
	found := false
	for i := range kr.pos {
		if kr.pos[i].server == server {
			kr.pos[i].entries = entries
			found = true
			break
		}
	}
	if !found {
		kr.pos = append(kr.pos, posEntry{server: server, entries: entries})
	}
	sortPos(kr.pos)
	if len(kr.pos) > c.perKey {
		kr.pos = kr.pos[:c.perKey]
	}
}

// routes returns copies of the key's positive (sorted, best first) and
// negative routes; nils when the key is uncached.
func (c *routeCache) routes(key string) ([]posEntry, []int) {
	kr := c.touch(key, false)
	if kr == nil {
		return nil, nil
	}
	return append([]posEntry(nil), kr.pos...), append([]int(nil), kr.neg...)
}

func (c *routeCache) invalidate(key string) bool {
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.lru.Remove(el)
	delete(c.entries, key)
	return true
}

func (c *routeCache) invalidateNegatives(key string) bool {
	kr := c.touch(key, false)
	if kr == nil || len(kr.neg) == 0 {
		return false
	}
	kr.neg = nil
	return true
}

func removePos(pos []posEntry, server int) []posEntry {
	for i := range pos {
		if pos[i].server == server {
			return append(pos[:i], pos[i+1:]...)
		}
	}
	return pos
}

func removeInt(xs []int, x int) []int {
	for i := range xs {
		if xs[i] == x {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}
