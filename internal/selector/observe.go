package selector

import (
	"context"
	"errors"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Observed is the transport middleware hook that feeds the scoreboard:
// every call's latency lands in the per-server EWMA on success, and
// every failure matching transport.ErrServerDown (genuine downs,
// chaos-injected drops and partitions, exhausted retries below it)
// extends the server's failure streak. Context expiry and protocol
// errors are attributed to neither side and recorded as nothing.
//
// Compose it below any retrying layer so each attempt is scored — an
// attempt that failed cost the scoreboard-relevant signal even if a
// later attempt succeeded.
type Observed struct {
	inner transport.Caller
	sel   *Selector
}

var _ transport.Caller = (*Observed)(nil)

// Observe wraps inner so every call outcome is recorded into sel. A nil
// selector returns inner unchanged.
func Observe(inner transport.Caller, sel *Selector) transport.Caller {
	if inner == nil {
		panic("selector: Observe requires an inner Caller")
	}
	if sel == nil {
		return inner
	}
	return &Observed{inner: inner, sel: sel}
}

// NumServers returns the inner transport's cluster size.
func (o *Observed) NumServers() int { return o.inner.NumServers() }

// Call delegates to the inner transport, scoring the attempt.
func (o *Observed) Call(ctx context.Context, server int, msg wire.Message) (wire.Message, error) {
	start := time.Now()
	reply, err := o.inner.Call(ctx, server, msg)
	switch {
	case err == nil:
		o.sel.RecordSuccess(server, time.Since(start))
	case errors.Is(err, transport.ErrServerDown):
		o.sel.RecordFailure(server)
	}
	return reply, err
}
