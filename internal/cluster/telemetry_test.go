package cluster_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestClusterTelemetry drives the wire protocol through an instrumented
// cluster and checks the node op counters, live entry gauges, and
// chaos-visible transport errors all land in one registry snapshot.
func TestClusterTelemetry(t *testing.T) {
	cl := cluster.New(3, stats.NewRNG(11))
	reg := telemetry.NewRegistry()
	tm := cl.EnableTelemetry(reg)
	if again := cl.EnableTelemetry(reg); again != tm {
		t.Fatal("EnableTelemetry must be idempotent")
	}
	ctx := context.Background()
	fullCfg := wire.Config{Scheme: wire.FullReplication}

	placeFull(t, cl, 5)
	if _, err := cl.Caller().Call(ctx, 2, wire.Add{Key: "k", Config: fullCfg, Entry: "extra"}); err != nil {
		t.Fatalf("add: %v", err)
	}
	if _, err := cl.Caller().Call(ctx, 1, wire.Lookup{Key: "k", T: 3}); err != nil {
		t.Fatalf("lookup: %v", err)
	}

	snap := reg.Snapshot()

	// Client-facing ops count on the server that handled them; the
	// server-to-server fan-out (StoreBatch etc.) is not a client op.
	if got := snap.PerServer["node.place"]; got[0] != 1 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("node.place = %v, want [1 0 0]", got)
	}
	if got := snap.PerServer["node.add"]; got[2] != 1 {
		t.Fatalf("node.add = %v, want add on server 2", got)
	}
	if got := snap.PerServer["node.lookup"]; got[1] != 1 {
		t.Fatalf("node.lookup = %v, want lookup on server 1", got)
	}

	// Entry gauges mirror live storage: their sum is the paper's
	// storage-cost metric, their spread the load-skew input.
	entries := snap.PerServer["node.entries"]
	var sum int64
	for _, v := range entries {
		sum += v
	}
	if want := int64(cl.TotalStorage("k")); sum != want {
		t.Fatalf("node.entries sum = %d, want TotalStorage %d", sum, want)
	}
	for i, v := range entries {
		if v != 6 { // 5 placed + 1 added, fully replicated
			t.Fatalf("node.entries[%d] = %d, want 6", i, v)
		}
	}
	if got := snap.PerServer["node.keys"]; got[0] != 1 {
		t.Fatalf("node.keys = %v, want 1 key per server", got)
	}
	if telemetry.Skew(entries) != 0 {
		t.Fatalf("full replication skew = %v, want 0", telemetry.Skew(entries))
	}

	// A chaos-injected drop shows up as a per-server transport error in
	// the next snapshot.
	cl.SetDropRate(1, 1)
	if _, err := cl.Caller().Call(ctx, 1, wire.Ping{}); !errors.Is(err, transport.ErrServerDown) {
		t.Fatalf("dropped call err = %v, want ErrServerDown", err)
	}
	snap = reg.Snapshot()
	if got := snap.PerServer["transport.errors"]; got[1] != 1 {
		t.Fatalf("transport.errors = %v, want the injected drop on server 1", got)
	}
	if got := tm.Errors.At(1).Value(); got != 1 {
		t.Fatalf("tm.Errors[1] = %d, want 1", got)
	}
	calls := snap.PerServer["transport.calls"]
	if calls[1] == 0 {
		t.Fatalf("transport.calls = %v, want traffic on server 1", calls)
	}
}
