package cluster_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/entry"
	"repro/internal/node"
	"repro/internal/plstest"
	"repro/internal/stats"
	"repro/internal/strategy"
	"repro/internal/topo"
	"repro/internal/wire"
)

// zoneCluster builds an 8-server cluster on a 2x2x2 topology (one
// server per rack; servers 0..3 under region r0, 4..7 under r1).
func zoneCluster(t *testing.T, seed uint64) (*cluster.Cluster, *topo.Topology) {
	t.Helper()
	cl := cluster.New(8, stats.NewRNG(seed))
	tp, err := topo.Parse("2x2x2", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SetTopology(tp); err != nil {
		t.Fatal(err)
	}
	return cl, tp
}

// TestZonePartitionInvariantsAllSchemes runs every placement scheme
// with region r0 severed: updates issued mid-partition may fail (the
// paper's fault model — unreachable homes simply miss them), but no
// partial application may ever break a scheme's structural invariants,
// and once the zone heals, lookups satisfy again from the surviving
// placement.
func TestZonePartitionInvariantsAllSchemes(t *testing.T) {
	configs := []wire.Config{
		{Scheme: wire.FullReplication},
		{Scheme: wire.Fixed, X: 8},
		{Scheme: wire.RandomServer, X: 8},
		{Scheme: wire.RoundRobin, Y: 3},
		{Scheme: wire.Hash, Y: 3, Seed: 7, ZoneSpread: true},
		{Scheme: wire.MultiProbe, Y: 3, Seed: 7, ZoneSpread: true},
		{Scheme: wire.KeyPartition},
	}
	for ci, cfg := range configs {
		t.Run(cfg.Scheme.String(), func(t *testing.T) {
			ctx := context.Background()
			cl, _ := zoneCluster(t, uint64(300+ci))
			drv := strategy.MustNew(cfg, stats.NewRNG(uint64(400+ci)))
			if err := drv.Place(ctx, cl.Caller(), "k", entry.Synthetic(24)); err != nil {
				t.Fatalf("place: %v", err)
			}

			cl.Chaos().PartitionZone("r0")
			// Best-effort churn against the split cluster: adds whose homes
			// sit inside r0 fail, the rest land. Either way the structure
			// must hold at every instant.
			failed := 0
			for i := 0; i < 16; i++ {
				v := entry.Entry(fmt.Sprintf("part%d", i))
				if err := drv.Add(ctx, cl.Caller(), "k", v); err != nil {
					failed++
				}
			}
			v := plstest.Observe(cl, "k", cfg)
			plstest.Assert(t, "mid-partition structural", v.Check(nil))

			cl.Chaos().HealZone("r0")
			res, err := drv.PartialLookup(ctx, cl.Caller(), "k", 4)
			if err != nil {
				t.Fatalf("post-heal lookup: %v", err)
			}
			if !res.Satisfied(4) {
				t.Fatalf("post-heal lookup returned %d entries, want >= 4", len(res.Entries))
			}
			v = plstest.Observe(cl, "k", cfg)
			plstest.Assert(t, "post-heal structural", v.Check(nil))
			t.Logf("%v: %d/16 mid-partition adds failed", cfg.Scheme, failed)
		})
	}
}

// TestReplacePreservesZoneTopology pins the Replace regression the
// cluster.Replace comment points at: the fresh node must re-learn the
// cluster's shared topology, or its spread-mode home computations
// diverge — it would reject repair pushes for entries it should hold
// and plan its own sweeps under base assignment. Verified both
// white-box (shared instance) and end-to-end (repair restores full
// spread coverage onto the blank replacement).
func TestReplacePreservesZoneTopology(t *testing.T) {
	ctx := context.Background()
	cl, tp := zoneCluster(t, 310)
	cfg := wire.Config{Scheme: wire.Hash, Y: 3, Seed: 9, ZoneSpread: true}
	drv := strategy.MustNew(cfg, stats.NewRNG(410))
	entries := entry.Synthetic(40)
	if err := drv.Place(ctx, cl.Caller(), "k", entries); err != nil {
		t.Fatalf("place: %v", err)
	}
	live := entry.NewSet(len(entries))
	for _, v := range entries {
		live.Add(v)
	}

	nd := cl.Replace(3, stats.NewRNG(999))
	if nd.Topology() != tp {
		t.Fatal("Replace installed a node without the cluster's shared topology")
	}

	// Anti-entropy re-populates the blank replacement; with the shared
	// topology attached it must converge back to full spread coverage.
	for i := 0; i < cl.N(); i++ {
		r := node.NewRepairer(cl.Node(i), node.RepairOptions{Health: cl.Health()})
		r.SweepOnce(ctx)
	}
	v := plstest.Observe(cl, "k", cfg)
	plstest.Assert(t, "post-replace structural", v.Check(live))
	plstest.Assert(t, "post-replace coverage", v.CheckCoverage(live))
}

// TestZoneColdPathByteIdentical pins the tentpole's determinism
// contract at cluster scope: attaching a topology with spread off, a
// zero latency profile, and an off-net client changes nothing — the
// same seeds yield byte-identical lookup answers, probe counts, and
// message totals as a topology-free run. RandomServer-x is the scheme
// most sensitive to stray RNG draws (every lookup consumes a fresh
// probe permutation), so it is the one pinned.
func TestZoneColdPathByteIdentical(t *testing.T) {
	type sample struct {
		Entries   []entry.Entry
		Contacted int
	}
	run := func(attach bool) ([]sample, int64) {
		ctx := context.Background()
		cl := cluster.New(8, stats.NewRNG(55))
		if attach {
			tp, err := topo.Parse("2x2x2", 8)
			if err != nil {
				t.Fatal(err)
			}
			if err := cl.SetTopology(tp); err != nil {
				t.Fatal(err)
			}
		}
		drv := strategy.MustNew(wire.Config{Scheme: wire.RandomServer, X: 6}, stats.NewRNG(56))
		for k := 0; k < 6; k++ {
			key := fmt.Sprintf("k%d", k)
			if err := drv.Place(ctx, cl.Caller(), key, entry.Synthetic(9)); err != nil {
				t.Fatalf("place %s: %v", key, err)
			}
		}
		var out []sample
		for round := 0; round < 3; round++ {
			for k := 0; k < 6; k++ {
				res, err := drv.PartialLookup(ctx, cl.Caller(), fmt.Sprintf("k%d", k), 5)
				if err != nil {
					t.Fatalf("lookup: %v", err)
				}
				out = append(out, sample{Entries: res.Entries, Contacted: res.Contacted})
			}
		}
		return out, cl.Messages()
	}
	plainSamples, plainMsgs := run(false)
	zonedSamples, zonedMsgs := run(true)
	if plainMsgs != zonedMsgs {
		t.Fatalf("message totals diverged: %d without topology, %d with", plainMsgs, zonedMsgs)
	}
	if !reflect.DeepEqual(plainSamples, zonedSamples) {
		t.Fatal("seeded lookups diverged after attaching an inert topology")
	}
}
