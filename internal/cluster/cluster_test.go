package cluster_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/entry"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

func placeFull(t *testing.T, cl *cluster.Cluster, h int) []entry.Entry {
	t.Helper()
	entries := entry.Synthetic(h)
	es := make([]string, h)
	for i, v := range entries {
		es[i] = string(v)
	}
	reply, err := cl.Caller().Call(context.Background(), 0, wire.Place{
		Key: "k", Config: wire.Config{Scheme: wire.FullReplication}, Entries: es,
	})
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	if ack := reply.(wire.Ack); ack.Err != "" {
		t.Fatalf("place ack: %s", ack.Err)
	}
	return entries
}

func TestClusterBasics(t *testing.T) {
	cl := cluster.New(4, stats.NewRNG(1))
	if cl.N() != 4 || cl.Caller().NumServers() != 4 {
		t.Fatalf("N = %d", cl.N())
	}
	placeFull(t, cl, 7)
	if got := cl.TotalStorage("k"); got != 28 {
		t.Fatalf("TotalStorage = %d, want 28", got)
	}
	snap := cl.Snapshot("k")
	if len(snap) != 4 {
		t.Fatalf("snapshot length %d", len(snap))
	}
	for i, s := range snap {
		if s.Len() != 7 {
			t.Fatalf("snapshot[%d] has %d entries", i, s.Len())
		}
	}
}

func TestClusterFailureInjection(t *testing.T) {
	cl := cluster.New(3, stats.NewRNG(2))
	placeFull(t, cl, 2)
	cl.Fail(1)
	if cl.Alive(1) || !cl.Alive(0) {
		t.Fatal("Alive flags wrong")
	}
	if cl.AliveCount() != 2 {
		t.Fatalf("AliveCount = %d", cl.AliveCount())
	}
	_, err := cl.Caller().Call(context.Background(), 1, wire.Ping{})
	if !errors.Is(err, transport.ErrServerDown) {
		t.Fatalf("call to failed server = %v", err)
	}
	// Failed server state is frozen and visible in Snapshot but not
	// AliveSnapshot.
	if len(cl.AliveSnapshot("k")) != 2 {
		t.Fatal("AliveSnapshot wrong length")
	}
	if len(cl.Snapshot("k")) != 3 {
		t.Fatal("Snapshot wrong length")
	}
	cl.Recover(1)
	if cl.AliveCount() != 3 {
		t.Fatal("Recover did not restore")
	}
	cl.Fail(0)
	cl.Fail(2)
	cl.RecoverAll()
	if cl.AliveCount() != 3 {
		t.Fatal("RecoverAll did not restore")
	}
}

func TestClusterMessageCounters(t *testing.T) {
	cl := cluster.New(5, stats.NewRNG(3))
	placeFull(t, cl, 3)
	// Place cost: 1 client request + 5 broadcast receipts.
	if got := cl.Messages(); got != 6 {
		t.Fatalf("Messages after place = %d, want 6", got)
	}
	cl.ResetMessages()
	if cl.Messages() != 0 {
		t.Fatal("ResetMessages failed")
	}
	// Snapshots must not count messages.
	cl.Snapshot("k")
	cl.TotalStorage("k")
	if cl.Messages() != 0 {
		t.Fatal("snapshot perturbed message counters")
	}
}

func TestClusterDeterministicFromSeed(t *testing.T) {
	build := func() string {
		cl := cluster.New(6, stats.NewRNG(99))
		es := make([]string, 50)
		for i, v := range entry.Synthetic(50) {
			es[i] = string(v)
		}
		cl.Caller().Call(context.Background(), 0, wire.Place{
			Key: "k", Config: wire.Config{Scheme: wire.RandomServer, X: 10}, Entries: es,
		})
		out := ""
		for _, s := range cl.Snapshot("k") {
			out += s.String() + ";"
		}
		return out
	}
	if build() != build() {
		t.Fatal("same-seed clusters produced different placements")
	}
}

func TestClusterNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	cluster.New(0, stats.NewRNG(1))
}
