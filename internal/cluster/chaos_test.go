package cluster_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestClusterChaosDelegation checks the fault-control surface the
// cluster exposes — drop rates, latency, partitions — all of which
// delegate to the chaos layer every call already flows through.
func TestClusterChaosDelegation(t *testing.T) {
	cl := cluster.New(3, stats.NewRNG(21))
	ctx := context.Background()

	// Certain drop: the call fails as if the server were down, without
	// marking the node down.
	cl.SetDropRate(1, 1)
	_, err := cl.Caller().Call(ctx, 1, wire.Ping{})
	if !errors.Is(err, transport.ErrServerDown) {
		t.Fatalf("dropped call: err = %v, want ErrServerDown match", err)
	}
	if !cl.Alive(1) {
		t.Fatal("drop rate must not mark the node down")
	}
	cl.SetDropRate(1, 0)
	if _, err := cl.Caller().Call(ctx, 1, wire.Ping{}); err != nil {
		t.Fatalf("after clearing drop rate: %v", err)
	}

	// Injected latency is observable on the call path.
	cl.SetLatency(2, 30*time.Millisecond, 0)
	start := time.Now()
	if _, err := cl.Caller().Call(ctx, 2, wire.Ping{}); err != nil {
		t.Fatalf("latency call: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("latency not injected: call took %v", elapsed)
	}
	cl.SetLatency(2, 0, 0)

	// Client-side partition, then heal.
	cl.Partition(transport.ClientOrigin, 0)
	if _, err := cl.Caller().Call(ctx, 0, wire.Ping{}); !errors.Is(err, transport.ErrServerDown) {
		t.Fatalf("partitioned call: err = %v, want ErrServerDown match", err)
	}
	cl.Heal(transport.ClientOrigin, 0)
	if _, err := cl.Caller().Call(ctx, 0, wire.Ping{}); err != nil {
		t.Fatalf("healed call: %v", err)
	}
}

// TestClusterPeerPartition cuts the link between two servers and checks
// that each node's origin-aware view of the transport honors the cut in
// both directions while third parties stay connected.
func TestClusterPeerPartition(t *testing.T) {
	cl := cluster.New(3, stats.NewRNG(22))
	ctx := context.Background()
	cl.Partition(0, 1)

	from0 := cl.Chaos().Origin(0)
	from2 := cl.Chaos().Origin(2)
	if _, err := from0.Call(ctx, 1, wire.Ping{}); !errors.Is(err, transport.ErrInjected) {
		t.Fatalf("0->1 should be cut: %v", err)
	}
	if _, err := from2.Call(ctx, 1, wire.Ping{}); err != nil {
		t.Fatalf("2->1 should be open: %v", err)
	}
	if _, err := cl.Caller().Call(ctx, 1, wire.Ping{}); err != nil {
		t.Fatalf("client->1 should be open: %v", err)
	}
	cl.HealAll()
	if _, err := from0.Call(ctx, 1, wire.Ping{}); err != nil {
		t.Fatalf("after HealAll: %v", err)
	}
}

// TestClusterRestartSlowStart kills a server and brings it back with a
// slow-start penalty: the first calls after the restart pay extra
// latency, then the node returns to full speed.
func TestClusterRestartSlowStart(t *testing.T) {
	cl := cluster.New(2, stats.NewRNG(23))
	ctx := context.Background()

	cl.Fail(0)
	if _, err := cl.Caller().Call(ctx, 0, wire.Ping{}); !errors.Is(err, transport.ErrServerDown) {
		t.Fatalf("failed server: err = %v", err)
	}

	cl.Restart(0, 2, 30*time.Millisecond)
	if !cl.Alive(0) {
		t.Fatal("Restart did not revive the node")
	}
	for call := 0; call < 3; call++ {
		start := time.Now()
		if _, err := cl.Caller().Call(ctx, 0, wire.Ping{}); err != nil {
			t.Fatalf("call %d after restart: %v", call, err)
		}
		elapsed := time.Since(start)
		if call < 2 && elapsed < 25*time.Millisecond {
			t.Fatalf("call %d finished in %v, want slow-start penalty", call, elapsed)
		}
		if call == 2 && elapsed > 20*time.Millisecond {
			t.Fatalf("call %d took %v, slow-start did not expire", call, elapsed)
		}
	}
}

// TestClusterChaosDeterministic pins that a faulted cluster is a pure
// function of its seed: the same seed yields the same drop pattern, and
// golden seeds used elsewhere stay valid because a fault-free chaos
// layer consumes no randomness.
func TestClusterChaosDeterministic(t *testing.T) {
	trace := func(seed uint64) []bool {
		cl := cluster.New(2, stats.NewRNG(seed))
		cl.SetDropRate(0, 0.4)
		out := make([]bool, 100)
		for i := range out {
			_, err := cl.Caller().Call(context.Background(), 0, wire.Ping{})
			out[i] = err != nil
		}
		return out
	}
	a, b := trace(9), trace(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: equally seeded clusters diverged", i)
		}
	}
}
