// Package cluster assembles n lookup server nodes over the in-process
// transport, with failure injection and metric snapshots. It is the
// substrate every simulation and benchmark runs on; the TCP deployment
// path (cmd/plsd + transport.Client) shares the same node code.
package cluster

import (
	"repro/internal/entry"
	"repro/internal/node"
	"repro/internal/stats"
	"repro/internal/transport"
)

// Cluster is a set of n in-process lookup servers.
type Cluster struct {
	tr    *transport.Inproc
	nodes []*node.Node
}

// New creates a cluster of n servers. Each node receives an independent
// RNG split from rng, so a cluster is fully reproducible from one seed.
func New(n int, rng *stats.RNG) *Cluster {
	if n <= 0 {
		panic("cluster: New requires n > 0")
	}
	c := &Cluster{
		tr:    transport.NewInproc(n),
		nodes: make([]*node.Node, n),
	}
	for i := 0; i < n; i++ {
		c.nodes[i] = node.New(i, rng.Split())
		c.nodes[i].Attach(c.tr)
		c.tr.Bind(i, c.nodes[i])
	}
	return c
}

// N returns the number of servers.
func (c *Cluster) N() int { return len(c.nodes) }

// Caller returns the transport used to reach the servers; strategy
// drivers consume it.
func (c *Cluster) Caller() transport.Caller { return c.tr }

// Node returns server i, for white-box inspection in tests and metrics.
func (c *Cluster) Node(i int) *node.Node { return c.nodes[i] }

// Fail marks server i as failed: subsequent calls to it return
// transport.ErrServerDown.
func (c *Cluster) Fail(i int) { c.tr.SetDown(i, true) }

// Recover brings server i back. Its state is whatever it held when it
// failed; the paper's strategies do not re-synchronize recovered
// servers.
func (c *Cluster) Recover(i int) { c.tr.SetDown(i, false) }

// RecoverAll brings every server back.
func (c *Cluster) RecoverAll() {
	for i := range c.nodes {
		c.tr.SetDown(i, false)
	}
}

// Alive reports whether server i is operational.
func (c *Cluster) Alive(i int) bool { return !c.tr.Down(i) }

// AliveCount returns the number of operational servers.
func (c *Cluster) AliveCount() int { return c.N() - c.tr.DownCount() }

// Snapshot returns a copy of each server's local entry set for a key
// (including failed servers' frozen state). Snapshots bypass the
// transport so they never perturb message counters.
func (c *Cluster) Snapshot(key string) []*entry.Set {
	out := make([]*entry.Set, len(c.nodes))
	for i, nd := range c.nodes {
		out[i] = nd.LocalSet(key)
	}
	return out
}

// AliveSnapshot returns the local sets of operational servers only.
func (c *Cluster) AliveSnapshot(key string) []*entry.Set {
	out := make([]*entry.Set, 0, len(c.nodes))
	for i, nd := range c.nodes {
		if c.Alive(i) {
			out = append(out, nd.LocalSet(key))
		}
	}
	return out
}

// TotalStorage returns the combined number of entries stored across all
// servers for a key: the paper's storage-cost metric (Sec. 4.1).
func (c *Cluster) TotalStorage(key string) int {
	total := 0
	for _, nd := range c.nodes {
		total += nd.LocalSet(key).Len()
	}
	return total
}

// Messages returns the total number of messages processed by all
// servers: the paper's update-overhead metric (Sec. 6.4).
func (c *Cluster) Messages() int64 { return c.tr.TotalProcessed() }

// ProcessedBy returns the number of messages processed by one server,
// for per-server load analyses (hot-spot experiments).
func (c *Cluster) ProcessedBy(server int) int64 { return c.tr.Processed(server) }

// ResetMessages zeroes the message counters (e.g. after placement, so
// an experiment counts update traffic only).
func (c *Cluster) ResetMessages() { c.tr.ResetCounters() }
