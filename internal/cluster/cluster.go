// Package cluster assembles n lookup server nodes over the in-process
// transport, with failure injection and metric snapshots. It is the
// substrate every simulation and benchmark runs on; the TCP deployment
// path (cmd/plsd + transport.Client) shares the same node code.
//
// All traffic — client probes and server-to-server peer messages —
// flows through a transport.Chaos middleware, so simulations can
// inject latency, message drops, slow restarts, and pairwise
// partitions in addition to the binary up/down failures of Fail and
// Recover. With no faults configured the chaos layer is a transparent
// pass-through consuming no randomness, so seeded runs are unchanged.
package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/entry"
	"repro/internal/node"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Cluster is a set of n in-process lookup servers.
type Cluster struct {
	tr    *transport.Inproc
	chaos *transport.Chaos
	nodes []*node.Node
	addrs []string // synthetic member addresses (sim://i), unique per member

	// caller is what clients probe through: the chaos middleware, or —
	// after EnableTelemetry — an instrumented wrapper over it.
	caller transport.Caller
	tm     *telemetry.TransportMetrics
	nm     *telemetry.NodeMetrics

	// epoch counts failure-state transitions (Fail/Recover/Restart/
	// Replace); Health exposes it so repair sweeps can skip converged
	// clusters.
	epoch atomic.Uint64

	// memberEpoch counts committed membership transitions (Join/Drain);
	// it rides on every MembershipUpdate so members can discard replays.
	memberEpoch atomic.Uint64
	// nextAddr numbers synthetic joiner addresses; it never reuses a
	// drained member's number, so double-join detection stays simple.
	nextAddr int

	// topo, when set, is the zone topology shared by the chaos layer
	// and every node. Membership operations keep it in step with the
	// member count (Grow/Compact), and Replace re-attaches it to the
	// fresh node so the replacement keeps the dead server's zone.
	topo *topo.Topology
}

// New creates a cluster of n servers. Each node receives an independent
// RNG split from rng, so a cluster is fully reproducible from one seed.
func New(n int, rng *stats.RNG) *Cluster {
	if n <= 0 {
		panic("cluster: New requires n > 0")
	}
	c := &Cluster{
		tr:       transport.NewInproc(n),
		nodes:    make([]*node.Node, n),
		addrs:    make([]string, n),
		nextAddr: n,
	}
	for i := 0; i < n; i++ {
		c.nodes[i] = node.New(i, rng.Split())
		c.addrs[i] = fmt.Sprintf("sim://%d", i)
	}
	// The chaos RNG splits after the node RNGs so node seeds (and every
	// golden value derived from them) match the pre-chaos layout.
	c.chaos = transport.NewChaos(c.tr, rng.Split())
	for i := 0; i < n; i++ {
		c.nodes[i].Attach(c.chaos.Origin(i))
		c.tr.Bind(i, c.nodes[i])
	}
	c.caller = c.chaos
	return c
}

// N returns the number of servers.
func (c *Cluster) N() int { return len(c.nodes) }

// Caller returns the transport clients reach the servers through (the
// chaos middleware over the in-process transport, instrumented once
// EnableTelemetry has run); strategy drivers consume it.
func (c *Cluster) Caller() transport.Caller { return c.caller }

// EnableTelemetry instruments the cluster into reg: client traffic
// through Caller records per-server calls, errors (including
// chaos-injected faults), and latency histograms; each node counts its
// per-op throughput; and per-server entry/key gauges expose live
// storage and load skew (the runtime analogue of the paper's
// unfairness input, Eq. 1). Call it before issuing traffic; it returns
// the transport metrics for white-box assertions in tests.
func (c *Cluster) EnableTelemetry(reg *telemetry.Registry) *telemetry.TransportMetrics {
	if c.tm != nil {
		return c.tm // already instrumented
	}
	n := len(c.nodes)
	c.tm = telemetry.NewTransportMetrics(reg, "transport", n)
	c.caller = transport.Instrument(c.chaos, c.tm)
	c.nm = telemetry.NewNodeMetrics(reg, n)
	for _, nd := range c.nodes {
		nd.Instrument(c.nm)
	}
	// The gauge vectors are sized at instrumentation time; after a drain
	// the cluster may be smaller, so the closures bounds-check (a joiner
	// beyond the original size reports through the discard lane).
	reg.NewGaugeVecFunc("node.entries", n, func(i int) int64 {
		if i >= len(c.nodes) {
			return 0
		}
		return int64(c.nodes[i].EntryCount())
	})
	reg.NewGaugeVecFunc("node.keys", n, func(i int) int64 {
		if i >= len(c.nodes) {
			return 0
		}
		return int64(c.nodes[i].KeyCount())
	})
	return c.tm
}

// Chaos returns the fault-injection middleware all traffic traverses,
// for scenarios beyond the convenience methods below.
func (c *Cluster) Chaos() *transport.Chaos { return c.chaos }

// SetTopology attaches a zone topology to the whole cluster: the chaos
// layer (zone latency, whole-zone partitions) and every node (spread
// placement) share the same instance, the consistency the zone-spread
// mode depends on. The topology must cover exactly the current member
// count. Attaching one consumes no randomness — with a zero latency
// profile, seeded runs are unchanged.
func (c *Cluster) SetTopology(tp *topo.Topology) error {
	if tp != nil && tp.N() != len(c.nodes) {
		return fmt.Errorf("cluster: topology covers %d servers, cluster has %d", tp.N(), len(c.nodes))
	}
	c.topo = tp
	c.chaos.SetTopology(tp)
	for _, nd := range c.nodes {
		nd.SetTopology(tp)
	}
	return nil
}

// Topology returns the attached zone topology, or nil.
func (c *Cluster) Topology() *topo.Topology { return c.topo }

// Node returns server i, for white-box inspection in tests and metrics.
func (c *Cluster) Node(i int) *node.Node { return c.nodes[i] }

// Fail marks server i as failed: subsequent calls to it return
// transport.ErrServerDown.
func (c *Cluster) Fail(i int) {
	c.tr.SetDown(i, true)
	c.epoch.Add(1)
}

// Recover brings server i back. Its state is whatever it held when it
// failed; the paper's strategies do not re-synchronize recovered
// servers.
func (c *Cluster) Recover(i int) {
	c.tr.SetDown(i, false)
	c.epoch.Add(1)
}

// Restart brings server i back with a slow-start penalty: its next
// slowCalls calls each incur extra latency, modeling a server that is
// up but cold after a restart.
func (c *Cluster) Restart(i, slowCalls int, extra time.Duration) {
	c.chaos.SlowStart(i, slowCalls, extra)
	c.tr.SetDown(i, false)
	c.epoch.Add(1)
}

// RecoverAll brings every server back.
func (c *Cluster) RecoverAll() {
	for i := range c.nodes {
		c.tr.SetDown(i, false)
	}
	c.epoch.Add(1)
}

// Replace tears server i down permanently and installs a fresh, empty
// node in its place — the kill/replace churn of a real deployment,
// where a dead machine is swapped for a blank one and everything it
// stored is lost. The caller supplies the new node's RNG so the
// cluster's own seed stream (split once per node at New, then once for
// chaos) is never perturbed and golden seeds stay valid. The new node
// is bound and marked up; anti-entropy repair is what re-populates it.
func (c *Cluster) Replace(i int, rng *stats.RNG) *node.Node {
	nd := node.New(i, rng)
	nd.Attach(c.chaos.Origin(i))
	if c.nm != nil {
		nd.Instrument(c.nm)
	}
	// The topology is keyed by server id, so the replacement inherits
	// the dead server's zone — but the fresh node must re-learn the
	// shared instance, or its spread-mode home computations diverge
	// from the rest of the cluster (regression-tested in zone_test.go).
	nd.SetTopology(c.topo)
	c.nodes[i] = nd
	c.tr.Bind(i, nd)
	c.tr.SetDown(i, false)
	c.epoch.Add(1)
	return nd
}

// Health is the cluster-driven analogue of the selector scoreboard for
// the repair daemon: presumed-dead tracks injected failures directly
// and the epoch advances on every failure-state transition. It
// satisfies the node.RepairHealth contract.
type Health struct{ c *Cluster }

// Health returns a repair health view backed by the cluster's failure
// injection.
func (c *Cluster) Health() Health { return Health{c} }

// PresumedDead reports, per server, whether it is currently failed.
func (h Health) PresumedDead() []bool {
	out := make([]bool, h.c.N())
	for i := range out {
		out[i] = h.c.tr.Down(i)
	}
	return out
}

// FailureEpoch returns the failure-transition counter.
func (h Health) FailureEpoch() uint64 { return h.c.epoch.Load() }

// SetLatency injects a latency distribution (base plus uniform jitter
// in [0, jitter)) on every call delivered to server i.
func (c *Cluster) SetLatency(i int, base, jitter time.Duration) {
	c.chaos.SetLatency(i, base, jitter)
}

// SetDropRate makes calls to server i fail with probability p before
// delivery; such failures match transport.ErrServerDown, so clients
// fail over (or retry, under a retrying lookup policy).
func (c *Cluster) SetDropRate(i int, p float64) { c.chaos.SetDropRate(i, p) }

// Partition severs the link between a and b in both directions; either
// may be transport.ClientOrigin to cut clients off from a server.
func (c *Cluster) Partition(a, b int) { c.chaos.Partition(a, b) }

// Heal removes the partition between a and b.
func (c *Cluster) Heal(a, b int) { c.chaos.Heal(a, b) }

// HealAll removes every partition (it does not clear latency or drop
// profiles; use the setters with zero values for that).
func (c *Cluster) HealAll() { c.chaos.HealAll() }

// Alive reports whether server i is operational.
func (c *Cluster) Alive(i int) bool { return !c.tr.Down(i) }

// AliveCount returns the number of operational servers.
func (c *Cluster) AliveCount() int { return c.N() - c.tr.DownCount() }

// Snapshot returns a copy of each server's local entry set for a key
// (including failed servers' frozen state). Snapshots bypass the
// transport so they never perturb message counters.
func (c *Cluster) Snapshot(key string) []*entry.Set {
	out := make([]*entry.Set, len(c.nodes))
	for i, nd := range c.nodes {
		out[i] = nd.LocalSet(key)
	}
	return out
}

// AliveSnapshot returns the local sets of operational servers only.
func (c *Cluster) AliveSnapshot(key string) []*entry.Set {
	out := make([]*entry.Set, 0, len(c.nodes))
	for i, nd := range c.nodes {
		if c.Alive(i) {
			out = append(out, nd.LocalSet(key))
		}
	}
	return out
}

// TotalStorage returns the combined number of entries stored across all
// servers for a key: the paper's storage-cost metric (Sec. 4.1).
func (c *Cluster) TotalStorage(key string) int {
	total := 0
	for _, nd := range c.nodes {
		total += nd.LocalSet(key).Len()
	}
	return total
}

// Messages returns the total number of messages processed by all
// servers: the paper's update-overhead metric (Sec. 6.4).
func (c *Cluster) Messages() int64 { return c.tr.TotalProcessed() }

// ProcessedBy returns the number of messages processed by one server,
// for per-server load analyses (hot-spot experiments).
func (c *Cluster) ProcessedBy(server int) int64 { return c.tr.Processed(server) }

// ResetMessages zeroes the message counters (e.g. after placement, so
// an experiment counts update traffic only).
func (c *Cluster) ResetMessages() { c.tr.ResetCounters() }

// MemberEpoch returns the number of committed membership transitions.
func (c *Cluster) MemberEpoch() uint64 { return c.memberEpoch.Load() }

// Addrs returns a copy of the current member address list.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// Join admits a new server with a synthesized address. See JoinAddr.
func (c *Cluster) Join(ctx context.Context, rng *stats.RNG) (*node.Node, error) {
	addr := fmt.Sprintf("sim://%d", c.nextAddr)
	return c.JoinAddr(ctx, addr, rng)
}

// JoinAddr admits a new server at addr into the running cluster: the
// node takes the next slot, every member (new one included) receives
// the committed MembershipUpdate in ascending slot order, and each
// rebalances its share of every key synchronously before acking — when
// JoinAddr returns, the cluster satisfies every scheme's placement
// invariant at the new size. Down members are skipped and simply miss
// the update, the paper's fault model; the anti-entropy sweep fixes
// them after recovery (the failure epoch is advanced here for exactly
// that reason). The caller supplies the joiner's RNG, as with Replace,
// so the cluster's own seed stream is never perturbed.
//
// Membership operations are orchestration-plane: they must not run
// concurrently with each other (they may run alongside lookups, which
// never block on rebalance).
func (c *Cluster) JoinAddr(ctx context.Context, addr string, rng *stats.RNG) (*node.Node, error) {
	for _, a := range c.addrs {
		if a == addr {
			return nil, fmt.Errorf("cluster: %s is already a member", addr)
		}
	}
	oldN := len(c.nodes)
	nd := node.New(oldN, rng)
	nd.Attach(c.chaos.Origin(oldN))
	if c.nm != nil {
		nd.Instrument(c.nm)
	}
	c.chaos.Grow(1)
	if c.topo != nil {
		// Keep the topology in step with the member count: the joiner
		// goes to the least-populated rack, and spread assignments stay
		// suspended (base fallback) only for the instant the counts
		// disagree.
		c.topo.Grow(1)
		nd.SetTopology(c.topo)
	}
	c.tr.Add(nd)
	c.nodes = append(c.nodes, nd)
	c.addrs = append(c.addrs, addr)
	c.nextAddr++

	m := wire.MembershipUpdate{
		Epoch:   c.memberEpoch.Add(1),
		OldN:    oldN,
		NewN:    oldN + 1,
		Joined:  []int{oldN},
		Leaving: -1,
		Addrs:   c.Addrs(),
	}
	err := c.broadcastUpdate(ctx, m, nil)
	// New failure picture (one more member): epoch-gated repair must
	// rescan, and it is also what finishes the job for any member that
	// was down during the broadcast.
	c.epoch.Add(1)
	return nd, err
}

// Drain removes server i gracefully: the leaver rebalances first
// (handing its share to the surviving homes and dropping only copies
// with a confirmed survivor), then every survivor in ascending order,
// and only after every ack is the slot physically compacted — higher
// ids shift down by one and the affected nodes are renumbered. The
// drained node is returned still holding whatever could not be safely
// handed off (its final snapshot is the operator's escrow; see
// docs/OPERATIONS.md). Draining a down member is refused: a corpse
// cannot push its entries, that is what Replace + repair are for.
func (c *Cluster) Drain(ctx context.Context, i int) (*node.Node, error) {
	n := len(c.nodes)
	if i < 0 || i >= n {
		return nil, fmt.Errorf("cluster: drain of server %d out of range [0,%d)", i, n)
	}
	if n == 1 {
		return nil, fmt.Errorf("cluster: refusing to drain the last member")
	}
	if c.tr.Down(i) {
		return nil, fmt.Errorf("cluster: refusing to drain down server %d (use Replace)", i)
	}
	survivors := make([]string, 0, n-1)
	for s, a := range c.addrs {
		if s != i {
			survivors = append(survivors, a)
		}
	}
	m := wire.MembershipUpdate{
		Epoch:   c.memberEpoch.Add(1),
		OldN:    n,
		NewN:    n - 1,
		Leaving: i,
		Addrs:   survivors,
	}
	// The leaver sweeps first — its pushes are what move the data — so
	// it leads the broadcast order.
	err := c.broadcastUpdate(ctx, m, []int{i})

	leaver := c.nodes[i]
	c.tr.Remove(i)
	c.chaos.Compact(i)
	if c.topo != nil {
		c.topo.Compact(i)
	}
	c.nodes = append(c.nodes[:i], c.nodes[i+1:]...)
	c.addrs = append(c.addrs[:i], c.addrs[i+1:]...)
	for s := i; s < len(c.nodes); s++ {
		c.nodes[s].SetID(s)
		c.nodes[s].Attach(c.chaos.Origin(s))
	}
	for _, nd := range c.nodes {
		nd.MarkCompacted(m.Epoch)
	}
	c.epoch.Add(1)
	return leaver, err
}

// broadcastUpdate delivers a MembershipUpdate to every member, first
// in listed order, then the rest ascending, skipping down members (the
// paper's fault model: down servers lose updates) and collecting the
// first error. Delivery goes through the cluster caller so membership
// traffic is counted and chaos-faulted like any other.
func (c *Cluster) broadcastUpdate(ctx context.Context, m wire.MembershipUpdate, first []int) error {
	sent := make(map[int]bool, len(c.nodes))
	var firstErr error
	deliver := func(target int) {
		if sent[target] || c.tr.Down(target) {
			return
		}
		sent[target] = true
		reply, err := c.caller.Call(ctx, target, m)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: membership update to %d: %w", target, err)
			}
			return
		}
		if ack, ok := reply.(wire.Ack); ok && ack.Err != "" && firstErr == nil {
			firstErr = fmt.Errorf("cluster: membership update to %d: %s", target, ack.Err)
		}
	}
	for _, t := range first {
		deliver(t)
	}
	for t := 0; t < len(c.nodes); t++ {
		deliver(t)
	}
	return firstErr
}

// Manager adapts the cluster to the node.MembershipManager contract so
// simulations can serve wire-level Join/Leave frames (the TCP daemon
// has its own controller). Each admitted joiner's RNG is minted by
// mint, keeping seed management in the caller's hands.
func (c *Cluster) Manager(mint func() *stats.RNG) node.MembershipManager {
	return clusterManager{c: c, mint: mint}
}

type clusterManager struct {
	c    *Cluster
	mint func() *stats.RNG
}

func (m clusterManager) Join(ctx context.Context, addr string) (wire.MembershipUpdate, error) {
	if _, err := m.c.JoinAddr(ctx, addr, m.mint()); err != nil {
		return wire.MembershipUpdate{}, err
	}
	return wire.MembershipUpdate{
		Epoch:   m.c.MemberEpoch(),
		OldN:    len(m.c.nodes) - 1,
		NewN:    len(m.c.nodes),
		Joined:  []int{len(m.c.nodes) - 1},
		Leaving: -1,
		Addrs:   m.c.Addrs(),
	}, nil
}

func (m clusterManager) Leave(ctx context.Context, server int) error {
	_, err := m.c.Drain(ctx, server)
	return err
}
