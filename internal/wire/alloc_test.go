package wire

import (
	"fmt"
	"testing"
)

// Allocation gates for the hot-path codec. These are hard build gates,
// not benchmarks: a change that re-introduces per-message allocations
// on the five hottest kinds fails `go test` everywhere it runs (local,
// CI test job, race job). Budgets, per operation in steady state:
//
//   - AppendEncode into a with-capacity buffer: 0 allocations.
//   - DecodeInto reusing the target's storage:  0 (flat messages) or
//     ≤1 (a slice field growing to capacity; amortizes to 0).
//
// The ≤2 ceiling below leaves one allocation of slack over those
// budgets so the gate survives compiler-version wobble without ever
// letting a per-entry or per-string regression through (LookupReply
// with 16 entries would cost 17+ without the arena views).

const allocCeiling = 2

func hotMessages() []Message {
	entries := make([]string, 16)
	for i := range entries {
		entries[i] = fmt.Sprintf("entry-%02d", i)
	}
	return []Message{
		Lookup{Key: "hot-key", T: 10},
		LookupReply{Entries: entries},
		Ack{},
		Add{Key: "hot-key", Config: Config{Scheme: RandomServer, X: 3}, Entry: "v-new"},
		StoreOne{Key: "hot-key", Config: Config{Scheme: RoundRobin, Y: 2}, Entry: "v-new", Pos: 7},
	}
}

// TestAppendEncodeZeroAllocs gates the encode half: re-encoding into a
// scratch buffer with capacity must not allocate at all.
func TestAppendEncodeZeroAllocs(t *testing.T) {
	for _, msg := range hotMessages() {
		msg := msg
		buf := make([]byte, 0, 1024)
		allocs := testing.AllocsPerRun(200, func() {
			buf = AppendEncode(buf[:0], msg)
		})
		if allocs > 0 {
			t.Errorf("AppendEncode(%T): %.1f allocs/op, want 0", msg, allocs)
		}
	}
}

// TestDecodeIntoAllocCeiling gates the decode half for the five hot
// kinds through their DecodeInto variants.
func TestDecodeIntoAllocCeiling(t *testing.T) {
	var (
		lk Lookup
		lr LookupReply
		ak Ack
		ad Add
		so StoreOne
	)
	cases := []struct {
		name   string
		data   []byte
		decode func([]byte) error
	}{
		{"Lookup", Encode(hotMessages()[0]), func(b []byte) error { return lk.DecodeInto(b) }},
		{"LookupReply", Encode(hotMessages()[1]), func(b []byte) error { return lr.DecodeInto(b) }},
		{"Ack", Encode(hotMessages()[2]), func(b []byte) error { return ak.DecodeInto(b) }},
		{"Add", Encode(hotMessages()[3]), func(b []byte) error { return ad.DecodeInto(b) }},
		{"StoreOne", Encode(hotMessages()[4]), func(b []byte) error { return so.DecodeInto(b) }},
	}
	for _, tc := range cases {
		if err := tc.decode(tc.data); err != nil { // warm slice capacities
			t.Fatalf("%s: DecodeInto: %v", tc.name, err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if err := tc.decode(tc.data); err != nil {
				t.Fatalf("%s: DecodeInto: %v", tc.name, err)
			}
		})
		if allocs > allocCeiling {
			t.Errorf("%s: DecodeInto %.1f allocs/op, want <= %d", tc.name, allocs, allocCeiling)
		}
	}
}

// TestDecodeIntoMatchesDecode pins that the zero-alloc variants parse
// identically to the generic decoder on every hot kind.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	for _, msg := range hotMessages() {
		data := Encode(msg)
		want, err := Decode(data)
		if err != nil {
			t.Fatalf("Decode(%T): %v", msg, err)
		}
		switch w := want.(type) {
		case Lookup:
			var m Lookup
			if err := m.DecodeInto(data); err != nil || m != w {
				t.Errorf("Lookup.DecodeInto = %+v, %v; want %+v", m, err, w)
			}
		case LookupReply:
			var m LookupReply
			if err := m.DecodeInto(data); err != nil || len(m.Entries) != len(w.Entries) || m.Err != w.Err {
				t.Errorf("LookupReply.DecodeInto = %+v, %v; want %+v", m, err, w)
			} else {
				for i := range m.Entries {
					if m.Entries[i] != w.Entries[i] {
						t.Errorf("LookupReply.DecodeInto entry %d = %q, want %q", i, m.Entries[i], w.Entries[i])
					}
				}
			}
		case Ack:
			var m Ack
			if err := m.DecodeInto(data); err != nil || m != w {
				t.Errorf("Ack.DecodeInto = %+v, %v; want %+v", m, err, w)
			}
		case Add:
			var m Add
			if err := m.DecodeInto(data); err != nil || m != w {
				t.Errorf("Add.DecodeInto = %+v, %v; want %+v", m, err, w)
			}
		case StoreOne:
			var m StoreOne
			if err := m.DecodeInto(data); err != nil || m != w {
				t.Errorf("StoreOne.DecodeInto = %+v, %v; want %+v", m, err, w)
			}
		}
	}
}

// TestDecodeIntoRejectsWrongKind pins that a DecodeInto variant fails
// closed on a payload of a different kind instead of misparsing it.
func TestDecodeIntoRejectsWrongKind(t *testing.T) {
	data := Encode(Ping{})
	var m Lookup
	if err := m.DecodeInto(data); err == nil {
		t.Fatal("Lookup.DecodeInto accepted a Ping payload")
	}
	if err := m.DecodeInto(nil); err == nil {
		t.Fatal("Lookup.DecodeInto accepted an empty payload")
	}
}
