// Package wire defines the protocol messages exchanged between clients
// and lookup servers (and between servers), together with a compact
// binary codec used by the TCP transport.
//
// Every operation in the paper maps to a message here:
//
//   - place / add / delete / partial_lookup client requests (Sec. 2)
//   - store / remove server broadcasts (Secs. 3, 5)
//   - the Round-Robin delete-and-migrate protocol of Fig. 11
//
// Messages are plain data; all behavior lives in internal/node (server
// side) and internal/strategy (client side).
package wire

import "fmt"

// Scheme identifies one of the paper's five placement strategies.
type Scheme uint8

// The five strategies of Sec. 3. Values start at one so the zero value
// is detectably unset.
const (
	FullReplication Scheme = iota + 1
	Fixed
	RandomServer
	RoundRobin
	Hash
	// KeyPartition is the traditional hashing baseline of Fig. 1
	// (center): the key is hashed to a single server that stores the
	// complete entry set. It is not a partial-lookup strategy — the
	// paper's conclusion contrasts partial lookups against exactly
	// this design's hot-spot and fault-tolerance weaknesses.
	KeyPartition
	// MultiProbe is multi-probe consistent hashing (arXiv:1505.00062),
	// added for elastic clusters: entry v lives on y servers chosen by
	// probing a hash ring whose per-server points do not depend on n,
	// so membership changes move only ~1/(n+1) of the entries —
	// against Hash-y's mod-n assignment, which remaps nearly all of
	// them. Like Hash-y it keeps no per-key coordinator state and uses
	// Y and Seed.
	MultiProbe
)

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case FullReplication:
		return "FullReplication"
	case Fixed:
		return "Fixed-x"
	case RandomServer:
		return "RandomServer-x"
	case RoundRobin:
		return "Round-y"
	case Hash:
		return "Hash-y"
	case KeyPartition:
		return "KeyPartition"
	case MultiProbe:
		return "MultiProbe-y"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// Valid reports whether s is one of the defined schemes.
func (s Scheme) Valid() bool { return s >= FullReplication && s <= MultiProbe }

// Config selects a strategy and its parameter for one key. Exactly one
// of X or Y is meaningful depending on the scheme:
//
//   - Fixed and RandomServer use X, the per-server subset size;
//   - RoundRobin and Hash use Y, the replication degree;
//   - FullReplication uses neither.
type Config struct {
	Scheme Scheme
	X      int
	Y      int
	// Seed selects the Hash-y hash family f1..fy. All servers learn it
	// from the config carried on placement/update messages, so the
	// family is consistent cluster-wide. Zero is a valid family;
	// experiments draw a fresh seed per run to average over families,
	// as the paper's simulations do.
	Seed uint64
	// Coordinators is the number of servers mirroring the Round-y
	// head/tail counters (servers 0..Coordinators-1). The paper's
	// footnote 1 suggests this generalization of the centralized
	// scheme "to improve reliability": updates go to the lowest-id
	// live coordinator, and counter changes are mirrored to the rest,
	// so Round-y updates survive coordinator failures. Zero or one
	// means the paper's base scheme (server 0 only).
	Coordinators int
	// RSReplace selects the Sec. 5.3 alternative delete handling for
	// RandomServer-x: instead of tolerating a below-x set until new
	// adds arrive (the cushion scheme), a server that deletes a local
	// copy actively contacts other servers to find a replacement
	// entry. The paper argues this costs more and is no fairer; the
	// ext-rsreplace experiment measures that claim.
	RSReplace bool
	// ZoneSpread selects topology-aware placement: each key's entries
	// are spread across failure domains (racks, DCs, regions) using
	// the cluster's shared topo.Topology instead of the scheme's base
	// assignment, so no single zone holds every copy of an entry.
	// Servers without an attached topology ignore the flag and fall
	// back to base placement; see DESIGN.md §14 for the consistency
	// contract.
	ZoneSpread bool
}

// Validate checks that the config is internally consistent for a cluster
// of n servers.
func (c Config) Validate(n int) error {
	if !c.Scheme.Valid() {
		return fmt.Errorf("wire: invalid scheme %d", c.Scheme)
	}
	switch c.Scheme {
	case Fixed, RandomServer:
		if c.X <= 0 {
			return fmt.Errorf("wire: %v requires x > 0, got %d", c.Scheme, c.X)
		}
	case RoundRobin, Hash, MultiProbe:
		if c.Y <= 0 {
			return fmt.Errorf("wire: %v requires y > 0, got %d", c.Scheme, c.Y)
		}
		if c.Scheme == RoundRobin && c.Y > n && n > 0 {
			return fmt.Errorf("wire: Round-y requires y <= n, got y=%d n=%d", c.Y, n)
		}
		if c.Scheme == RoundRobin && c.Coordinators > n && n > 0 {
			return fmt.Errorf("wire: Round-y requires coordinators <= n, got %d of %d", c.Coordinators, n)
		}
	}
	return nil
}

// Param returns the scheme's active parameter value (x or y, 0 for full
// replication), for display.
func (c Config) Param() int {
	switch c.Scheme {
	case Fixed, RandomServer:
		return c.X
	case RoundRobin, Hash, MultiProbe:
		return c.Y
	default:
		return 0
	}
}

// String renders the config the way the paper labels curves, e.g.
// "RandomServer-20" or "Hash-2".
func (c Config) String() string {
	switch c.Scheme {
	case FullReplication:
		return "FullReplication"
	case Fixed:
		return fmt.Sprintf("Fixed-%d", c.X)
	case RandomServer:
		if c.RSReplace {
			return fmt.Sprintf("RandomServer-%d+replace", c.X)
		}
		return fmt.Sprintf("RandomServer-%d", c.X)
	case RoundRobin:
		return fmt.Sprintf("Round-%d", c.Y)
	case Hash:
		return fmt.Sprintf("Hash-%d", c.Y)
	case KeyPartition:
		return "KeyPartition"
	case MultiProbe:
		return fmt.Sprintf("MultiProbe-%d", c.Y)
	default:
		return fmt.Sprintf("Config(%d)", uint8(c.Scheme))
	}
}

// Kind discriminates message types on the wire.
type Kind uint8

// Message kinds. Values are part of the wire format; do not reorder.
const (
	KindPlace Kind = iota + 1
	KindAdd
	KindDelete
	KindLookup
	KindStoreBatch
	KindStoreOne
	KindRemoveOne
	KindRoundRemove
	KindRemoveAt
	KindCounterSync
	KindMigrate
	KindDump
	KindPing
	KindAck
	KindLookupReply
	KindMigrateReply
	KindDumpReply
	KindPlaceBatch
	KindAddBatch
	KindLookupBatch
	KindBatchAck
	KindLookupBatchReply
	KindWalReset
	KindWalConfig
	KindWalStore
	KindWalStoreMany
	KindWalRemove
	KindWalCounters
	KindWalHCount
	KindSnapKey
	KindSnapFooter
	KindRepairQuery
	KindRepairQueryReply
	KindRepairPush
	KindRepairPushReply
	KindJoin
	KindLeave
	KindMembershipUpdate
	KindRebalancePush
)

// MaintenanceKind reports whether k belongs to the background
// maintenance protocols — anti-entropy repair and dynamic membership
// (join/leave/rebalance) — rather than the request path. The transport
// uses it to split connection-reuse telemetry by traffic class.
func MaintenanceKind(k Kind) bool {
	return (k >= KindRepairQuery && k <= KindRepairPushReply) ||
		(k >= KindJoin && k <= KindRebalancePush)
}

// Message is implemented by every protocol message.
type Message interface {
	Kind() Kind
}

// Place is the client's place(k, {v1..vh}) request, sent to one random
// server which then distributes entries per the key's strategy. Config
// travels with the request so servers learn how the key is managed.
type Place struct {
	Key     string
	Config  Config
	Entries []string
}

// Add is the client's add(k, v) request. Config rides along so a server
// that has not yet seen the key (e.g. it joined after the place, or the
// placement left it empty) can still apply the right scheme.
type Add struct {
	Key    string
	Config Config
	Entry  string
}

// Delete is the client's delete(k, v) request. See Add for why Config is
// included.
type Delete struct {
	Key    string
	Config Config
	Entry  string
}

// Lookup is the client's partial_lookup(k, t) probe of a single server.
// The client-side strategy driver decides which and how many servers to
// probe; each probe asks for up to T entries.
type Lookup struct {
	Key string
	T   int
}

// StoreBatch is the server-to-server broadcast carrying the full entry
// list of a place operation (Full Replication, Fixed-x, RandomServer-x).
// Each receiver applies its scheme-specific local selection rule.
type StoreBatch struct {
	Key     string
	Config  Config
	Entries []string
}

// StoreOne instructs a server to store a single entry (Round-y and
// Hash-y placement; add broadcasts for the replicated schemes).
// Config is included so that receivers can lazily initialize per-key
// state when an add precedes any place. Pos is the entry's round-robin
// sequence position (meaningful for Round-y only): the entry at
// position p lives on servers (p mod n)..(p+y-1 mod n), the invariant
// the Fig. 11 migration protocol maintains.
type StoreOne struct {
	Key    string
	Config Config
	Entry  string
	Pos    int
}

// RemoveOne instructs a server to delete its local copy of an entry.
// It is also the "remove(u)" message of the Fig. 11 migration protocol.
type RemoveOne struct {
	Key    string
	Config Config
	Entry  string
}

// RoundRemove is the Fig. 11 broadcast "remove(v, head)": delete v and,
// if the receiver stored v, fetch a replacement from the head server.
// HeadServer is the server id responsible for supplying the replacement
// (head mod n), and HeadPos is the round-robin position the replacement
// entry currently occupies.
type RoundRemove struct {
	Key        string
	Entry      string
	HeadServer int
	HeadPos    int
}

// RemoveAt retires the replacement entry's original copies after a
// Fig. 11 migration completes: delete the local copy of Entry only if
// it still sits at round-robin position Pos (copies that migrated into
// the hole carry the hole's position and must survive).
type RemoveAt struct {
	Key   string
	Entry string
	Pos   int
}

// CounterSync mirrors the Round-y coordinator counters to a standby
// coordinator (footnote 1 generalization). Receivers adopt the values
// only if they advance their local view, so replayed or reordered
// syncs are harmless.
type CounterSync struct {
	Key  string
	Head int
	Tail int
}

// Migrate is the Fig. 11 "migrate(v)" request sent to the head server by
// each server that stored the deleted entry v.
type Migrate struct {
	Key   string
	Entry string
}

// PlaceBatch carries many place(k, {v1..vh}) requests in one envelope,
// amortizing one network round trip (and, server-side, one dispatch)
// across keys. The receiving server executes each item exactly as it
// would a standalone Place and reports per-item outcomes in a BatchAck.
// Items must share an initial server: the client groups keys by route
// (Round-y coordinator, KeyPartition home, or one random server).
type PlaceBatch struct {
	Items []Place
}

// AddBatch carries many add(k, v) requests in one envelope; see
// PlaceBatch for routing and reply semantics.
type AddBatch struct {
	Items []Add
}

// LookupBatch carries many partial_lookup probes in one envelope: one
// round trip asks a single server about many keys. The reply holds one
// LookupReply per item, in order.
type LookupBatch struct {
	Items []Lookup
}

// Dump asks a server for its complete local entry set for a key
// (debugging, integration tests, metric snapshots over TCP).
type Dump struct {
	Key string
}

// Ping checks liveness.
type Ping struct{}

// Ack is the generic reply. Err is empty on success.
type Ack struct {
	Err string
}

// LookupReply returns up to T entries sampled from the server's local
// set, or an error.
type LookupReply struct {
	Entries []string
	Err     string
}

// MigrateReply returns the replacement entry chosen by the head server.
// Found is false when no replacement exists (e.g. the head server has no
// other entries).
type MigrateReply struct {
	Replacement string
	Found       bool
	Err         string
}

// DumpReply returns a server's complete local set for a key.
type DumpReply struct {
	Entries []string
	Err     string
}

// BatchAck is the reply to PlaceBatch and AddBatch: Errs[i] is the
// per-item outcome ("" on success), always len(Items) long. Err reports
// an envelope-level failure (e.g. a malformed batch) instead.
type BatchAck struct {
	Errs []string
	Err  string
}

// LookupBatchReply answers a LookupBatch: Replies[i] answers Items[i].
type LookupBatchReply struct {
	Replies []LookupReply
	Err     string
}

// WAL record messages. These never cross the network: they are the
// durability records a node appends to its write-ahead log (see
// internal/store and DESIGN.md §9). They reuse the wire codec so the
// WAL format shares the codec's bounds checks and fuzz coverage.
//
// Records describe the *outcome* of a mutation, not its input: a
// RandomServer-x reservoir decision is logged as the store/remove pair
// it produced, so replay never consults the RNG and recovery is
// placement-identical.

// WalReset records a key reset by a place broadcast: install Config,
// clear the entry set, drop strategy extension state. The entries the
// receiver selected follow as WalStoreMany/WalStore records.
type WalReset struct {
	Key    string
	Config Config
}

// WalConfig records a key's creation or lazy config adoption without
// touching entries.
type WalConfig struct {
	Key    string
	Config Config
}

// WalStore records one entry stored locally. HasPos marks Round-y
// placements, where Pos is the entry's round-robin sequence position.
type WalStore struct {
	Key    string
	Entry  string
	Pos    int
	HasPos bool
}

// WalStoreMany records a run of position-less local stores in
// application order (the selection a place broadcast left behind).
type WalStoreMany struct {
	Key     string
	Entries []string
}

// WalRemove records one entry removed locally (and its round-robin
// position forgotten, if it had one).
type WalRemove struct {
	Key   string
	Entry string
}

// WalCounters records the absolute Round-y coordinator counters after a
// mutation. Absolute values make replay order-insensitive to the
// adopt-if-advance rule of CounterSync.
type WalCounters struct {
	Key  string
	Head int
	Tail int
}

// WalHCount records the absolute RandomServer-x system-size counter
// after a mutation (the reservoir denominator of Sec. 5.3).
type WalHCount struct {
	Key    string
	HCount int
}

// SnapKey is one key's complete durable state in a snapshot file:
// config, the entry set with its insertion sequences (order matters —
// lookup sampling indexes the internal member order), and the
// scheme-private extension state. LSN is the WAL sequence number of the
// last record applied to the key when the snapshot observed it; replay
// skips records at or below it.
type SnapKey struct {
	Key    string
	Config Config
	LSN    uint64
	// Entries in internal set order with their parallel insertion
	// sequences; NextSeq is the set's next sequence counter.
	Entries []string
	Seqs    []uint64
	NextSeq uint64
	// ExtKind discriminates the extension state: 0 none, 1 Round-y
	// (Head/Tail/PosEntries/Positions), 2 RandomServer-x (HCount).
	ExtKind uint8
	Head    int
	Tail    int
	// PosEntries/Positions are the Round-y position map as parallel
	// slices.
	PosEntries []string
	Positions  []uint64
	HCount     int
}

// Extension-state discriminants for SnapKey.ExtKind.
const (
	SnapExtNone  uint8 = 0
	SnapExtRound uint8 = 1
	SnapExtRS    uint8 = 2
)

// SnapFooter terminates a snapshot file and carries the number of
// SnapKey frames written; a snapshot without a matching footer is
// truncated and invalid.
type SnapFooter struct {
	Keys uint64
}

// RepairQuery is phase one of an anti-entropy sweep: the sweeper asks a
// peer which of the listed candidate entries for a key it is missing.
// The peer answers with RepairQueryReply so that phase two (RepairPush)
// transfers only entries that are actually absent, keeping converged
// sweeps cheap on the wire.
type RepairQuery struct {
	Key     string
	Entries []string
}

// RepairQueryReply answers a RepairQuery. Missing is parallel to the
// query's Entries (true = the peer does not hold that entry). Len is
// the peer's current local set size for the key and HCount its
// RandomServer-x system-size counter, letting the sweeper cap
// fill-to-x pushes without a second round trip.
type RepairQueryReply struct {
	Missing []bool
	Len     int
	HCount  int
	Err     string
}

// RepairPush is phase two of an anti-entropy sweep: the sweeper
// re-replicates entries the peer reported missing. Config rides along
// so a freshly replaced, empty server adopts the key's scheme. For
// Round-y, HasPos is set and Positions carries each entry's original
// position in parallel with Entries — repair plugs holes at existing
// positions, it never redraws them. HCount propagates the
// RandomServer-x reservoir denominator (adopt-if-greater on receipt).
type RepairPush struct {
	Key       string
	Config    Config
	Entries   []string
	Positions []uint64
	HasPos    bool
	HCount    int
}

// RepairPushReply reports how many pushed entries the peer accepted
// after applying its scheme's local acceptance rule (cap at x, legal
// Round/Hash home, partition ownership).
type RepairPushReply struct {
	Accepted int
	Err      string
}

// Membership messages. A cluster's member list is versioned by a
// monotone epoch; every change (one join or one graceful leave) bumps
// it exactly once and is announced to every member as a
// MembershipUpdate, whose receipt triggers that member's synchronous
// rebalance sweep (see internal/node membership.go and DESIGN.md §11).

// Join announces a new server to any existing member, which acts as
// the membership coordinator for this change: it assigns the next
// slot, installs the new member list, and broadcasts the matching
// MembershipUpdate. The reply is that MembershipUpdate (carrying the
// joiner's slot as the sole Joined element and the full address list)
// or an Ack with Err.
type Join struct {
	Addr string
}

// Leave asks for a graceful drain of one member: every node rebalances
// the leaver's entries onto the surviving members before the slot is
// retired (contrast with kill/replace churn, where the entries are
// lost and anti-entropy repair re-replicates from surviving copies).
// The reply is an Ack once the handoff completed.
type Leave struct {
	Server int
}

// MembershipUpdate is the coordinator's broadcast announcing one
// member-list change. Epoch is the post-change version; receivers
// treat an epoch at or below their own as already applied (double
// joins and replayed broadcasts are no-ops). Joined lists slots added
// at this epoch; Leaving is the slot draining out, -1 if none. Addrs
// is the post-change member address list for TCP deployments (empty
// under the in-process transport). Handling the update runs the
// receiver's rebalance sweep; the Ack reply means the sweep finished.
type MembershipUpdate struct {
	Epoch   uint64
	OldN    int
	NewN    int
	Joined  []int
	Leaving int
	Addrs   []string
}

// RebalancePush transfers entries whose placement changed with the
// member list, phase two of a rebalance sweep (phase one reuses
// RepairQuery so converged keys cost one message). It carries the same
// payload as RepairPush plus the membership transition itself — NewN
// and Leaving — so the receiver can validate homes and windows under
// the post-change cluster size and derive its own post-change rank
// without global state. The reply is a RepairPushReply.
type RebalancePush struct {
	Key       string
	Config    Config
	Entries   []string
	Positions []uint64
	HasPos    bool
	HCount    int
	Epoch     uint64
	NewN      int
	Leaving   int
}

// Kind implementations.

func (Place) Kind() Kind            { return KindPlace }
func (Add) Kind() Kind              { return KindAdd }
func (Delete) Kind() Kind           { return KindDelete }
func (Lookup) Kind() Kind           { return KindLookup }
func (StoreBatch) Kind() Kind       { return KindStoreBatch }
func (StoreOne) Kind() Kind         { return KindStoreOne }
func (RemoveOne) Kind() Kind        { return KindRemoveOne }
func (RoundRemove) Kind() Kind      { return KindRoundRemove }
func (RemoveAt) Kind() Kind         { return KindRemoveAt }
func (CounterSync) Kind() Kind      { return KindCounterSync }
func (Migrate) Kind() Kind          { return KindMigrate }
func (Dump) Kind() Kind             { return KindDump }
func (Ping) Kind() Kind             { return KindPing }
func (Ack) Kind() Kind              { return KindAck }
func (LookupReply) Kind() Kind      { return KindLookupReply }
func (MigrateReply) Kind() Kind     { return KindMigrateReply }
func (DumpReply) Kind() Kind        { return KindDumpReply }
func (PlaceBatch) Kind() Kind       { return KindPlaceBatch }
func (AddBatch) Kind() Kind         { return KindAddBatch }
func (LookupBatch) Kind() Kind      { return KindLookupBatch }
func (BatchAck) Kind() Kind         { return KindBatchAck }
func (LookupBatchReply) Kind() Kind { return KindLookupBatchReply }
func (WalReset) Kind() Kind         { return KindWalReset }
func (WalConfig) Kind() Kind        { return KindWalConfig }
func (WalStore) Kind() Kind         { return KindWalStore }
func (WalStoreMany) Kind() Kind     { return KindWalStoreMany }
func (WalRemove) Kind() Kind        { return KindWalRemove }
func (WalCounters) Kind() Kind      { return KindWalCounters }
func (WalHCount) Kind() Kind        { return KindWalHCount }
func (SnapKey) Kind() Kind          { return KindSnapKey }
func (SnapFooter) Kind() Kind       { return KindSnapFooter }
func (RepairQuery) Kind() Kind      { return KindRepairQuery }
func (RepairQueryReply) Kind() Kind { return KindRepairQueryReply }
func (RepairPush) Kind() Kind       { return KindRepairPush }
func (RepairPushReply) Kind() Kind  { return KindRepairPushReply }
func (Join) Kind() Kind             { return KindJoin }
func (Leave) Kind() Kind            { return KindLeave }
func (MembershipUpdate) Kind() Kind { return KindMembershipUpdate }
func (RebalancePush) Kind() Kind    { return KindRebalancePush }
