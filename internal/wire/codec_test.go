package wire

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

// allMessages is a representative message of every kind, with all
// fields populated.
func allMessages() []Message {
	cfg := Config{Scheme: Hash, X: 3, Y: 7, Seed: 0xdeadbeef, RSReplace: true}
	return []Message{
		Place{Key: "song/abc", Config: cfg, Entries: []string{"v1", "v2", "v3"}},
		Add{Key: "k", Config: cfg, Entry: "10.0.0.1:99"},
		Delete{Key: "k", Config: cfg, Entry: "v"},
		Lookup{Key: "k", T: 35},
		StoreBatch{Key: "k", Config: cfg, Entries: []string{"a"}},
		StoreBatch{Key: "k", Config: cfg}, // nil entries
		StoreOne{Key: "k", Config: cfg, Entry: "v9"},
		RemoveOne{Key: "k", Config: cfg, Entry: "v9"},
		RoundRemove{Key: "k", Entry: "v3", HeadServer: 4, HeadPos: 12},
		RemoveAt{Key: "k", Entry: "v1", Pos: 8},
		StoreOne{Key: "k", Config: cfg, Entry: "v9", Pos: 3},
		Migrate{Key: "k", Entry: "v3"},
		Dump{Key: "k"},
		Ping{},
		Ack{},
		Ack{Err: "boom"},
		LookupReply{Entries: []string{"x", "y"}, Err: ""},
		LookupReply{Err: "no such key"},
		MigrateReply{Replacement: "v1", Found: true},
		MigrateReply{Found: false, Err: "pending removal missing"},
		DumpReply{Entries: []string{"v1"}},
		PlaceBatch{Items: []Place{
			{Key: "a", Config: cfg, Entries: []string{"v1", "v2"}},
			{Key: "b", Config: cfg},
		}},
		AddBatch{Items: []Add{{Key: "a", Config: cfg, Entry: "v1"}, {Key: "b", Config: cfg, Entry: "v2"}}},
		LookupBatch{Items: []Lookup{{Key: "a", T: 5}, {Key: "b", T: 10}}},
		LookupBatch{},
		BatchAck{Errs: []string{"", "boom"}},
		BatchAck{Err: "envelope rejected"},
		LookupBatchReply{Replies: []LookupReply{{Entries: []string{"x"}}, {Err: "thin"}}},
		WalReset{Key: "k", Config: cfg},
		WalConfig{Key: "k", Config: cfg},
		WalStore{Key: "k", Entry: "v1", Pos: 7, HasPos: true},
		WalStore{Key: "k", Entry: "v1"},
		WalStoreMany{Key: "k", Entries: []string{"v1", "v2"}},
		WalStoreMany{Key: "k"},
		WalRemove{Key: "k", Entry: "v2"},
		WalCounters{Key: "k", Head: 3, Tail: 9},
		WalHCount{Key: "k", HCount: 42},
		SnapKey{
			Key: "k", Config: cfg, LSN: 99,
			Entries: []string{"v1", "v2"}, Seqs: []uint64{4, 7}, NextSeq: 8,
			ExtKind: SnapExtRound, Head: 1, Tail: 5,
			PosEntries: []string{"v1", "v2"}, Positions: []uint64{1, 4},
		},
		SnapKey{Key: "k", Config: cfg, ExtKind: SnapExtRS, HCount: 17},
		SnapKey{Key: "k"},
		SnapFooter{Keys: 12},
		RepairQuery{Key: "k", Entries: []string{"v1", "v2"}},
		RepairQuery{Key: "k"},
		RepairQueryReply{Missing: []bool{true, false}, Len: 3, HCount: 9},
		RepairQueryReply{Err: "boom"},
		RepairPush{
			Key: "k", Config: cfg, Entries: []string{"v1", "v2"},
			Positions: []uint64{0, 3}, HasPos: true, HCount: 9,
		},
		RepairPush{Key: "k", Config: cfg, Entries: []string{"v1"}},
		RepairPushReply{Accepted: 2},
		RepairPushReply{Err: "not my partition"},
		Join{Addr: "10.0.0.7:7421"},
		Leave{Server: 3},
		MembershipUpdate{
			Epoch: 4, OldN: 5, NewN: 6, Joined: []int{5}, Leaving: -1,
			Addrs: []string{"a:1", "b:2", "c:3", "d:4", "e:5", "f:6"},
		},
		MembershipUpdate{Epoch: 5, OldN: 6, NewN: 5, Leaving: 2},
		RebalancePush{
			Key: "k", Config: cfg, Entries: []string{"v1", "v2"},
			Positions: []uint64{0, 3}, HasPos: true, HCount: 9,
			Epoch: 4, NewN: 6, Leaving: -1,
		},
		RebalancePush{Key: "k", Config: cfg, Entries: []string{"v1"}, Epoch: 5, NewN: 5, Leaving: 2},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, msg := range allMessages() {
		data := Encode(msg)
		got, err := Decode(data)
		if err != nil {
			t.Errorf("Decode(%T): %v", msg, err)
			continue
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("round trip %T: got %#v, want %#v", msg, got, msg)
		}
	}
}

func TestDecodeRejectsEmpty(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Decode(nil) = %v, want ErrTruncated", err)
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	if _, err := Decode([]byte{0xFF}); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Decode(unknown) = %v, want ErrUnknown", err)
	}
	if _, err := Decode([]byte{0x00}); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Decode(kind 0) = %v, want ErrUnknown", err)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	data := Encode(Ping{})
	data = append(data, 0x01)
	if _, err := Decode(data); !errors.Is(err, ErrTrailing) {
		t.Fatalf("Decode(trailing) = %v, want ErrTrailing", err)
	}
}

// TestDecodeEveryTruncation chops every valid encoding at every length
// and requires a clean error (never a panic, never silent success
// except at full length).
func TestDecodeEveryTruncation(t *testing.T) {
	for _, msg := range allMessages() {
		data := Encode(msg)
		for cut := 0; cut < len(data); cut++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("Decode panicked on truncated %T at %d/%d: %v", msg, cut, len(data), r)
					}
				}()
				got, err := Decode(data[:cut])
				// A strict prefix may still decode successfully if the
				// truncated tail was itself a valid message (rare but
				// possible with zero-length fields); what must never
				// happen is a panic or an equal-but-shorter decode.
				if err == nil && reflect.DeepEqual(got, msg) && cut < len(data) {
					t.Fatalf("truncated %T decoded equal to original at %d/%d", msg, cut, len(data))
				}
			}()
		}
	}
}

func TestDecodeRejectsOversizedString(t *testing.T) {
	// Hand-craft a Dump whose key length claims 2^40.
	data := []byte{byte(KindDump), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	if _, err := Decode(data); err == nil {
		t.Fatal("oversized string length accepted")
	}
}

func TestDecodeRejectsOversizedSlice(t *testing.T) {
	// LookupReply with an absurd entry count.
	data := []byte{byte(KindLookupReply), 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := Decode(data); err == nil {
		t.Fatal("oversized slice length accepted")
	}
}

func TestDecodeRejectsBadBool(t *testing.T) {
	m := MigrateReply{Replacement: "r", Found: true}
	data := Encode(m)
	// The bool byte follows the 1-byte length + 1-byte "r" after the kind.
	data[3] = 2
	if _, err := Decode(data); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("bad bool byte: %v, want ErrBadMessage", err)
	}
}

func TestDecodeArbitraryBytesNeverPanics(t *testing.T) {
	check := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Decode(data)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestCodecQuickRoundTrip property-tests the codec over random Place
// messages (the richest message shape).
func TestCodecQuickRoundTrip(t *testing.T) {
	check := func(key string, scheme uint8, x, y uint16, seed uint64, entries []string) bool {
		if len(key) > 1000 {
			key = key[:1000]
		}
		for i := range entries {
			if len(entries[i]) > 200 {
				entries[i] = entries[i][:200]
			}
		}
		if len(entries) > 100 {
			entries = entries[:100]
		}
		msg := Place{
			Key:     key,
			Config:  Config{Scheme: Scheme(scheme), X: int(x), Y: int(y), Seed: seed},
			Entries: entries,
		}
		got, err := Decode(Encode(msg))
		if err != nil {
			return false
		}
		want := msg
		if len(want.Entries) == 0 {
			want.Entries = nil // codec does not distinguish nil from empty
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeUnregisteredTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Encode of unregistered type did not panic")
		}
	}()
	Encode(fakeMessage{})
}

type fakeMessage struct{}

func (fakeMessage) Kind() Kind { return Kind(200) }
