package wire

import (
	"strings"
	"testing"
)

func TestSchemeString(t *testing.T) {
	tests := []struct {
		s    Scheme
		want string
	}{
		{FullReplication, "FullReplication"},
		{Fixed, "Fixed-x"},
		{RandomServer, "RandomServer-x"},
		{RoundRobin, "Round-y"},
		{Hash, "Hash-y"},
		{Scheme(0), "Scheme(0)"},
		{Scheme(99), "Scheme(99)"},
	}
	for _, tc := range tests {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("Scheme(%d).String() = %q, want %q", tc.s, got, tc.want)
		}
	}
}

func TestSchemeValid(t *testing.T) {
	for s := FullReplication; s <= MultiProbe; s++ {
		if !s.Valid() {
			t.Errorf("scheme %v invalid", s)
		}
	}
	if Scheme(0).Valid() || Scheme(8).Valid() {
		t.Error("out-of-range scheme reported valid")
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		n       int
		wantErr string
	}{
		{"full replication", Config{Scheme: FullReplication}, 10, ""},
		{"fixed ok", Config{Scheme: Fixed, X: 5}, 10, ""},
		{"fixed zero x", Config{Scheme: Fixed}, 10, "requires x > 0"},
		{"random server negative x", Config{Scheme: RandomServer, X: -1}, 10, "requires x > 0"},
		{"round ok", Config{Scheme: RoundRobin, Y: 3}, 10, ""},
		{"round zero y", Config{Scheme: RoundRobin}, 10, "requires y > 0"},
		{"round y exceeds n", Config{Scheme: RoundRobin, Y: 11}, 10, "requires y <= n"},
		{"round y equals n", Config{Scheme: RoundRobin, Y: 10}, 10, ""},
		{"hash ok", Config{Scheme: Hash, Y: 2}, 10, ""},
		{"hash zero y", Config{Scheme: Hash}, 10, "requires y > 0"},
		{"hash y may exceed n", Config{Scheme: Hash, Y: 20}, 10, ""},
		{"unset scheme", Config{}, 10, "invalid scheme"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate(tc.n)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestConfigString(t *testing.T) {
	tests := []struct {
		cfg  Config
		want string
	}{
		{Config{Scheme: FullReplication}, "FullReplication"},
		{Config{Scheme: Fixed, X: 20}, "Fixed-20"},
		{Config{Scheme: RandomServer, X: 20}, "RandomServer-20"},
		{Config{Scheme: RoundRobin, Y: 2}, "Round-2"},
		{Config{Scheme: Hash, Y: 2}, "Hash-2"},
	}
	for _, tc := range tests {
		if got := tc.cfg.String(); got != tc.want {
			t.Errorf("Config.String() = %q, want %q", got, tc.want)
		}
	}
}

func TestConfigParam(t *testing.T) {
	tests := []struct {
		cfg  Config
		want int
	}{
		{Config{Scheme: FullReplication}, 0},
		{Config{Scheme: Fixed, X: 20}, 20},
		{Config{Scheme: RandomServer, X: 7}, 7},
		{Config{Scheme: RoundRobin, Y: 2}, 2},
		{Config{Scheme: Hash, Y: 3}, 3},
	}
	for _, tc := range tests {
		if got := tc.cfg.Param(); got != tc.want {
			t.Errorf("%v.Param() = %d, want %d", tc.cfg, got, tc.want)
		}
	}
}

func TestMessageKinds(t *testing.T) {
	msgs := []Message{
		Place{}, Add{}, Delete{}, Lookup{}, StoreBatch{}, StoreOne{},
		RemoveOne{}, RoundRemove{}, Migrate{}, Dump{}, Ping{}, Ack{},
		LookupReply{}, MigrateReply{}, DumpReply{},
		PlaceBatch{}, AddBatch{}, LookupBatch{}, BatchAck{}, LookupBatchReply{},
	}
	seen := make(map[Kind]bool)
	for _, m := range msgs {
		k := m.Kind()
		if k == 0 {
			t.Errorf("%T has zero kind", m)
		}
		if seen[k] {
			t.Errorf("%T reuses kind %d", m, k)
		}
		seen[k] = true
	}
}
