package wire

import "fmt"

// DecodeInto variants for the hot-path message kinds.
//
// The generic Decode boxes its result into the Message interface and
// allocates fresh field slices on every call. The request path of a
// busy server decodes the same handful of kinds millions of times, so
// these per-kind variants decode into a caller-owned struct instead:
// no interface boxing, and slice fields are rebuilt in place over their
// existing capacity. Combined with the arena string views they bring a
// steady-state decode down to zero allocations (Lookup, Ack, Add,
// StoreOne) or one slice growth that amortizes away (LookupReply).
//
// Ownership follows DecodeOwned: decoded strings alias data, which the
// caller must not modify afterwards.

// intoDecoder validates the envelope shared by every DecodeInto
// variant: non-empty, under the payload cap, and of the expected kind.
func intoDecoder(data []byte, want Kind) (decoder, error) {
	if len(data) == 0 {
		return decoder{}, ErrTruncated
	}
	if len(data) > MaxPayload {
		return decoder{}, ErrOversized
	}
	if Kind(data[0]) != want {
		return decoder{}, fmt.Errorf("%w: kind %d, want %d", ErrBadMessage, data[0], want)
	}
	return decoder{buf: data[1:]}, nil
}

// finish folds a field-decode error with the trailing-bytes check, the
// same epilogue Decode applies.
func (d *decoder) finish(err error) error {
	if err != nil {
		return err
	}
	if len(d.buf) != 0 {
		return ErrTrailing
	}
	return nil
}

// strsInto decodes a string slice over dst's capacity, returning the
// rebuilt slice. Unlike strs it returns an empty non-nil slice for an
// empty list when dst has capacity; callers compare by length.
func (d *decoder) strsInto(dst []string) ([]string, error) {
	n, err := d.uvarint()
	if err != nil {
		return dst, err
	}
	if n > maxSliceLen {
		return dst, ErrOversized
	}
	dst = dst[:0]
	for i := uint64(0); i < n; i++ {
		s, err := d.str()
		if err != nil {
			return dst, err
		}
		dst = append(dst, s)
	}
	return dst, nil
}

// DecodeInto parses an encoded Lookup into m, reusing m's storage.
func (m *Lookup) DecodeInto(data []byte) error {
	d, err := intoDecoder(data, KindLookup)
	if err != nil {
		return err
	}
	if m.Key, err = d.str(); err == nil {
		m.T, err = d.intval()
	}
	return d.finish(err)
}

// DecodeInto parses an encoded LookupReply into m, rebuilding Entries
// over its existing capacity.
func (m *LookupReply) DecodeInto(data []byte) error {
	d, err := intoDecoder(data, KindLookupReply)
	if err != nil {
		return err
	}
	if m.Entries, err = d.strsInto(m.Entries); err == nil {
		m.Err, err = d.str()
	}
	return d.finish(err)
}

// DecodeInto parses an encoded Ack into m.
func (m *Ack) DecodeInto(data []byte) error {
	d, err := intoDecoder(data, KindAck)
	if err != nil {
		return err
	}
	m.Err, err = d.str()
	return d.finish(err)
}

// DecodeInto parses an encoded Add into m.
func (m *Add) DecodeInto(data []byte) error {
	d, err := intoDecoder(data, KindAdd)
	if err != nil {
		return err
	}
	if m.Key, err = d.str(); err == nil {
		m.Config, err = d.config()
	}
	if err == nil {
		m.Entry, err = d.str()
	}
	return d.finish(err)
}

// DecodeInto parses an encoded StoreOne into m.
func (m *StoreOne) DecodeInto(data []byte) error {
	d, err := intoDecoder(data, KindStoreOne)
	if err != nil {
		return err
	}
	if m.Key, err = d.str(); err == nil {
		m.Config, err = d.config()
	}
	if err == nil {
		m.Entry, err = d.str()
	}
	if err == nil {
		m.Pos, err = d.intval()
	}
	return d.finish(err)
}
