package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"unsafe"
)

// Codec limits. Oversized fields are rejected at decode time so a
// malformed or hostile peer cannot force huge allocations.
const (
	// MaxPayload is the largest encoded message the codec accepts.
	MaxPayload = 16 << 20
	// maxSliceLen bounds decoded slice lengths.
	maxSliceLen = 1 << 20
	// maxStringLen bounds decoded string lengths.
	maxStringLen = 1 << 16
)

// Encoding errors.
var (
	ErrTruncated  = errors.New("wire: truncated message")
	ErrOversized  = errors.New("wire: oversized field")
	ErrUnknown    = errors.New("wire: unknown message kind")
	ErrTrailing   = errors.New("wire: trailing bytes after message")
	ErrBadVarint  = errors.New("wire: malformed varint")
	ErrBadMessage = errors.New("wire: malformed message")
)

// Encode serializes msg as a kind byte followed by its fields.
func Encode(msg Message) []byte {
	return AppendEncode(make([]byte, 0, 64), msg)
}

// AppendEncode appends msg's encoding to dst and returns the extended
// slice, exactly as append does. It is the zero-allocation form of
// Encode: callers on the hot path keep a scratch buffer (typically from
// a sync.Pool) and re-encode into it, so steady-state encoding performs
// no allocations at all. The bytes produced are identical to Encode's.
func AppendEncode(dst []byte, msg Message) []byte {
	e := encoder{buf: dst}
	e.byte(byte(msg.Kind()))
	switch m := msg.(type) {
	case Place:
		e.str(m.Key)
		e.config(m.Config)
		e.strs(m.Entries)
	case Add:
		e.str(m.Key)
		e.config(m.Config)
		e.str(m.Entry)
	case Delete:
		e.str(m.Key)
		e.config(m.Config)
		e.str(m.Entry)
	case Lookup:
		e.str(m.Key)
		e.uvarint(uint64(m.T))
	case StoreBatch:
		e.str(m.Key)
		e.config(m.Config)
		e.strs(m.Entries)
	case StoreOne:
		e.str(m.Key)
		e.config(m.Config)
		e.str(m.Entry)
		e.uvarint(uint64(m.Pos))
	case RemoveOne:
		e.str(m.Key)
		e.config(m.Config)
		e.str(m.Entry)
	case RoundRemove:
		e.str(m.Key)
		e.str(m.Entry)
		e.uvarint(uint64(m.HeadServer))
		e.uvarint(uint64(m.HeadPos))
	case RemoveAt:
		e.str(m.Key)
		e.str(m.Entry)
		e.uvarint(uint64(m.Pos))
	case CounterSync:
		e.str(m.Key)
		e.uvarint(uint64(m.Head))
		e.uvarint(uint64(m.Tail))
	case Migrate:
		e.str(m.Key)
		e.str(m.Entry)
	case Dump:
		e.str(m.Key)
	case Ping:
		// no fields
	case Ack:
		e.str(m.Err)
	case LookupReply:
		e.strs(m.Entries)
		e.str(m.Err)
	case MigrateReply:
		e.str(m.Replacement)
		e.bool(m.Found)
		e.str(m.Err)
	case DumpReply:
		e.strs(m.Entries)
		e.str(m.Err)
	case PlaceBatch:
		e.uvarint(uint64(len(m.Items)))
		for _, it := range m.Items {
			e.str(it.Key)
			e.config(it.Config)
			e.strs(it.Entries)
		}
	case AddBatch:
		e.uvarint(uint64(len(m.Items)))
		for _, it := range m.Items {
			e.str(it.Key)
			e.config(it.Config)
			e.str(it.Entry)
		}
	case LookupBatch:
		e.uvarint(uint64(len(m.Items)))
		for _, it := range m.Items {
			e.str(it.Key)
			e.uvarint(uint64(it.T))
		}
	case BatchAck:
		e.strs(m.Errs)
		e.str(m.Err)
	case LookupBatchReply:
		e.uvarint(uint64(len(m.Replies)))
		for _, r := range m.Replies {
			e.strs(r.Entries)
			e.str(r.Err)
		}
		e.str(m.Err)
	case WalReset:
		e.str(m.Key)
		e.config(m.Config)
	case WalConfig:
		e.str(m.Key)
		e.config(m.Config)
	case WalStore:
		e.str(m.Key)
		e.str(m.Entry)
		e.uvarint(uint64(m.Pos))
		e.bool(m.HasPos)
	case WalStoreMany:
		e.str(m.Key)
		e.strs(m.Entries)
	case WalRemove:
		e.str(m.Key)
		e.str(m.Entry)
	case WalCounters:
		e.str(m.Key)
		e.uvarint(uint64(m.Head))
		e.uvarint(uint64(m.Tail))
	case WalHCount:
		e.str(m.Key)
		e.uvarint(uint64(m.HCount))
	case SnapKey:
		e.str(m.Key)
		e.config(m.Config)
		e.uvarint(m.LSN)
		e.strs(m.Entries)
		e.uints(m.Seqs)
		e.uvarint(m.NextSeq)
		e.byte(m.ExtKind)
		e.uvarint(uint64(m.Head))
		e.uvarint(uint64(m.Tail))
		e.strs(m.PosEntries)
		e.uints(m.Positions)
		e.uvarint(uint64(m.HCount))
	case SnapFooter:
		e.uvarint(m.Keys)
	case RepairQuery:
		e.str(m.Key)
		e.strs(m.Entries)
	case RepairQueryReply:
		e.bools(m.Missing)
		e.uvarint(uint64(m.Len))
		e.uvarint(uint64(m.HCount))
		e.str(m.Err)
	case RepairPush:
		e.str(m.Key)
		e.config(m.Config)
		e.strs(m.Entries)
		e.uints(m.Positions)
		e.bool(m.HasPos)
		e.uvarint(uint64(m.HCount))
	case RepairPushReply:
		e.uvarint(uint64(m.Accepted))
		e.str(m.Err)
	case Join:
		e.str(m.Addr)
	case Leave:
		e.uvarint(uint64(m.Server))
	case MembershipUpdate:
		e.uvarint(m.Epoch)
		e.uvarint(uint64(m.OldN))
		e.uvarint(uint64(m.NewN))
		e.ints(m.Joined)
		// Leaving is -1 when the change is a pure join; shift by one so
		// the wire value stays a uvarint.
		e.uvarint(uint64(m.Leaving + 1))
		e.strs(m.Addrs)
	case RebalancePush:
		e.str(m.Key)
		e.config(m.Config)
		e.strs(m.Entries)
		e.uints(m.Positions)
		e.bool(m.HasPos)
		e.uvarint(uint64(m.HCount))
		e.uvarint(m.Epoch)
		e.uvarint(uint64(m.NewN))
		e.uvarint(uint64(m.Leaving + 1))
	default:
		panic(fmt.Sprintf("wire: Encode called with unregistered message type %T", msg))
	}
	return e.buf
}

// Decode parses a message previously produced by Encode. It never
// panics on malformed input; it returns a descriptive error instead.
// The returned message is fully independent of data, which the caller
// may reuse immediately.
func Decode(data []byte) (Message, error) {
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	if len(data) > MaxPayload {
		return nil, ErrOversized
	}
	// One arena copy up front: every decoded string is a view into it,
	// so a message costs one byte-slice allocation regardless of how
	// many string fields it carries, and the caller keeps ownership of
	// data.
	arena := make([]byte, len(data))
	copy(arena, data)
	return DecodeOwned(arena)
}

// DecodeOwned parses a message like Decode but takes ownership of data:
// decoded string fields alias it directly, with no arena copy. The
// caller must not modify data after the call. It is the zero-copy path
// for callers that read each message into a fresh buffer — the framed
// TCP transport and the WAL replayer qualify; callers with a reused
// read buffer must use Decode.
func DecodeOwned(data []byte) (Message, error) {
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	if len(data) > MaxPayload {
		return nil, ErrOversized
	}
	d := decoder{buf: data[1:]}
	kind := Kind(data[0])
	var (
		msg Message
		err error
	)
	switch kind {
	case KindPlace:
		var m Place
		m.Key, err = d.str()
		if err == nil {
			m.Config, err = d.config()
		}
		if err == nil {
			m.Entries, err = d.strs()
		}
		msg = m
	case KindAdd:
		var m Add
		m.Key, err = d.str()
		if err == nil {
			m.Config, err = d.config()
		}
		if err == nil {
			m.Entry, err = d.str()
		}
		msg = m
	case KindDelete:
		var m Delete
		m.Key, err = d.str()
		if err == nil {
			m.Config, err = d.config()
		}
		if err == nil {
			m.Entry, err = d.str()
		}
		msg = m
	case KindLookup:
		var m Lookup
		m.Key, err = d.str()
		if err == nil {
			m.T, err = d.intval()
		}
		msg = m
	case KindStoreBatch:
		var m StoreBatch
		m.Key, err = d.str()
		if err == nil {
			m.Config, err = d.config()
		}
		if err == nil {
			m.Entries, err = d.strs()
		}
		msg = m
	case KindStoreOne:
		var m StoreOne
		m.Key, err = d.str()
		if err == nil {
			m.Config, err = d.config()
		}
		if err == nil {
			m.Entry, err = d.str()
		}
		if err == nil {
			m.Pos, err = d.intval()
		}
		msg = m
	case KindRemoveOne:
		var m RemoveOne
		m.Key, err = d.str()
		if err == nil {
			m.Config, err = d.config()
		}
		if err == nil {
			m.Entry, err = d.str()
		}
		msg = m
	case KindRoundRemove:
		var m RoundRemove
		m.Key, err = d.str()
		if err == nil {
			m.Entry, err = d.str()
		}
		if err == nil {
			m.HeadServer, err = d.intval()
		}
		if err == nil {
			m.HeadPos, err = d.intval()
		}
		msg = m
	case KindRemoveAt:
		var m RemoveAt
		m.Key, err = d.str()
		if err == nil {
			m.Entry, err = d.str()
		}
		if err == nil {
			m.Pos, err = d.intval()
		}
		msg = m
	case KindCounterSync:
		var m CounterSync
		m.Key, err = d.str()
		if err == nil {
			m.Head, err = d.intval()
		}
		if err == nil {
			m.Tail, err = d.intval()
		}
		msg = m
	case KindMigrate:
		var m Migrate
		m.Key, err = d.str()
		if err == nil {
			m.Entry, err = d.str()
		}
		msg = m
	case KindDump:
		var m Dump
		m.Key, err = d.str()
		msg = m
	case KindPing:
		msg = Ping{}
	case KindAck:
		var m Ack
		m.Err, err = d.str()
		msg = m
	case KindLookupReply:
		var m LookupReply
		m.Entries, err = d.strs()
		if err == nil {
			m.Err, err = d.str()
		}
		msg = m
	case KindMigrateReply:
		var m MigrateReply
		m.Replacement, err = d.str()
		if err == nil {
			m.Found, err = d.boolval()
		}
		if err == nil {
			m.Err, err = d.str()
		}
		msg = m
	case KindDumpReply:
		var m DumpReply
		m.Entries, err = d.strs()
		if err == nil {
			m.Err, err = d.str()
		}
		msg = m
	case KindPlaceBatch:
		var m PlaceBatch
		var n int
		if n, err = d.batchLen(); err == nil && n > 0 {
			m.Items = make([]Place, 0, min(n, 1024))
			for i := 0; i < n && err == nil; i++ {
				var it Place
				it.Key, err = d.str()
				if err == nil {
					it.Config, err = d.config()
				}
				if err == nil {
					it.Entries, err = d.strs()
				}
				m.Items = append(m.Items, it)
			}
		}
		msg = m
	case KindAddBatch:
		var m AddBatch
		var n int
		if n, err = d.batchLen(); err == nil && n > 0 {
			m.Items = make([]Add, 0, min(n, 1024))
			for i := 0; i < n && err == nil; i++ {
				var it Add
				it.Key, err = d.str()
				if err == nil {
					it.Config, err = d.config()
				}
				if err == nil {
					it.Entry, err = d.str()
				}
				m.Items = append(m.Items, it)
			}
		}
		msg = m
	case KindLookupBatch:
		var m LookupBatch
		var n int
		if n, err = d.batchLen(); err == nil && n > 0 {
			m.Items = make([]Lookup, 0, min(n, 1024))
			for i := 0; i < n && err == nil; i++ {
				var it Lookup
				it.Key, err = d.str()
				if err == nil {
					it.T, err = d.intval()
				}
				m.Items = append(m.Items, it)
			}
		}
		msg = m
	case KindBatchAck:
		var m BatchAck
		m.Errs, err = d.strs()
		if err == nil {
			m.Err, err = d.str()
		}
		msg = m
	case KindLookupBatchReply:
		var m LookupBatchReply
		var n int
		if n, err = d.batchLen(); err == nil && n > 0 {
			m.Replies = make([]LookupReply, 0, min(n, 1024))
			for i := 0; i < n && err == nil; i++ {
				var r LookupReply
				r.Entries, err = d.strs()
				if err == nil {
					r.Err, err = d.str()
				}
				m.Replies = append(m.Replies, r)
			}
		}
		if err == nil {
			m.Err, err = d.str()
		}
		msg = m
	case KindWalReset:
		var m WalReset
		m.Key, err = d.str()
		if err == nil {
			m.Config, err = d.config()
		}
		msg = m
	case KindWalConfig:
		var m WalConfig
		m.Key, err = d.str()
		if err == nil {
			m.Config, err = d.config()
		}
		msg = m
	case KindWalStore:
		var m WalStore
		m.Key, err = d.str()
		if err == nil {
			m.Entry, err = d.str()
		}
		if err == nil {
			m.Pos, err = d.intval()
		}
		if err == nil {
			m.HasPos, err = d.boolval()
		}
		msg = m
	case KindWalStoreMany:
		var m WalStoreMany
		m.Key, err = d.str()
		if err == nil {
			m.Entries, err = d.strs()
		}
		msg = m
	case KindWalRemove:
		var m WalRemove
		m.Key, err = d.str()
		if err == nil {
			m.Entry, err = d.str()
		}
		msg = m
	case KindWalCounters:
		var m WalCounters
		m.Key, err = d.str()
		if err == nil {
			m.Head, err = d.intval()
		}
		if err == nil {
			m.Tail, err = d.intval()
		}
		msg = m
	case KindWalHCount:
		var m WalHCount
		m.Key, err = d.str()
		if err == nil {
			m.HCount, err = d.intval()
		}
		msg = m
	case KindSnapKey:
		var m SnapKey
		m.Key, err = d.str()
		if err == nil {
			m.Config, err = d.config()
		}
		if err == nil {
			m.LSN, err = d.uvarint()
		}
		if err == nil {
			m.Entries, err = d.strs()
		}
		if err == nil {
			m.Seqs, err = d.uints()
		}
		if err == nil {
			m.NextSeq, err = d.uvarint()
		}
		if err == nil {
			m.ExtKind, err = d.byteval()
		}
		if err == nil {
			m.Head, err = d.intval()
		}
		if err == nil {
			m.Tail, err = d.intval()
		}
		if err == nil {
			m.PosEntries, err = d.strs()
		}
		if err == nil {
			m.Positions, err = d.uints()
		}
		if err == nil {
			m.HCount, err = d.intval()
		}
		msg = m
	case KindSnapFooter:
		var m SnapFooter
		m.Keys, err = d.uvarint()
		msg = m
	case KindRepairQuery:
		var m RepairQuery
		m.Key, err = d.str()
		if err == nil {
			m.Entries, err = d.strs()
		}
		msg = m
	case KindRepairQueryReply:
		var m RepairQueryReply
		m.Missing, err = d.bools()
		if err == nil {
			m.Len, err = d.intval()
		}
		if err == nil {
			m.HCount, err = d.intval()
		}
		if err == nil {
			m.Err, err = d.str()
		}
		msg = m
	case KindRepairPush:
		var m RepairPush
		m.Key, err = d.str()
		if err == nil {
			m.Config, err = d.config()
		}
		if err == nil {
			m.Entries, err = d.strs()
		}
		if err == nil {
			m.Positions, err = d.uints()
		}
		if err == nil {
			m.HasPos, err = d.boolval()
		}
		if err == nil {
			m.HCount, err = d.intval()
		}
		msg = m
	case KindRepairPushReply:
		var m RepairPushReply
		m.Accepted, err = d.intval()
		if err == nil {
			m.Err, err = d.str()
		}
		msg = m
	case KindJoin:
		var m Join
		m.Addr, err = d.str()
		msg = m
	case KindLeave:
		var m Leave
		m.Server, err = d.intval()
		msg = m
	case KindMembershipUpdate:
		var m MembershipUpdate
		m.Epoch, err = d.uvarint()
		if err == nil {
			m.OldN, err = d.intval()
		}
		if err == nil {
			m.NewN, err = d.intval()
		}
		if err == nil {
			m.Joined, err = d.ints()
		}
		if err == nil {
			m.Leaving, err = d.intval()
			m.Leaving--
		}
		if err == nil {
			m.Addrs, err = d.strs()
		}
		msg = m
	case KindRebalancePush:
		var m RebalancePush
		m.Key, err = d.str()
		if err == nil {
			m.Config, err = d.config()
		}
		if err == nil {
			m.Entries, err = d.strs()
		}
		if err == nil {
			m.Positions, err = d.uints()
		}
		if err == nil {
			m.HasPos, err = d.boolval()
		}
		if err == nil {
			m.HCount, err = d.intval()
		}
		if err == nil {
			m.Epoch, err = d.uvarint()
		}
		if err == nil {
			m.NewN, err = d.intval()
		}
		if err == nil {
			m.Leaving, err = d.intval()
			m.Leaving--
		}
		msg = m
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknown, kind)
	}
	if err != nil {
		return nil, err
	}
	if len(d.buf) != 0 {
		return nil, ErrTrailing
	}
	return msg, nil
}

type encoder struct {
	buf []byte
}

func (e *encoder) byte(b byte) { e.buf = append(e.buf, b) }

func (e *encoder) bool(v bool) {
	if v {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

func (e *encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) strs(ss []string) {
	e.uvarint(uint64(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

func (e *encoder) bools(vs []bool) {
	e.uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.bool(v)
	}
}

func (e *encoder) uints(vs []uint64) {
	e.uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.uvarint(v)
	}
}

func (e *encoder) ints(vs []int) {
	e.uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.uvarint(uint64(v))
	}
}

func (e *encoder) config(c Config) {
	e.byte(byte(c.Scheme))
	e.uvarint(uint64(c.X))
	e.uvarint(uint64(c.Y))
	e.uvarint(c.Seed)
	e.bool(c.RSReplace)
	e.uvarint(uint64(c.Coordinators))
	e.bool(c.ZoneSpread)
}

type decoder struct {
	buf []byte
}

func (d *decoder) byteval() (byte, error) {
	if len(d.buf) < 1 {
		return 0, ErrTruncated
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b, nil
}

func (d *decoder) boolval() (bool, error) {
	b, err := d.byteval()
	if err != nil {
		return false, err
	}
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, ErrBadMessage
	}
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, ErrBadVarint
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *decoder) intval() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, ErrOversized
	}
	return int(v), nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", ErrOversized
	}
	if uint64(len(d.buf)) < n {
		return "", ErrTruncated
	}
	s := view(d.buf[:n])
	d.buf = d.buf[n:]
	return s, nil
}

// view reinterprets b as a string without copying. Decoded strings may
// be retained indefinitely (entry sets store them), so this is sound
// only because every decode runs over an immutable buffer the decoder's
// entry point owns: Decode copies the input into a private arena first,
// and DecodeOwned transfers ownership by contract.
func view(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// batchLen reads and bounds the item count of a batch envelope.
func (d *decoder) batchLen() (int, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if n > maxSliceLen {
		return 0, ErrOversized
	}
	return int(n), nil
}

func (d *decoder) bools() ([]bool, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxSliceLen {
		return nil, ErrOversized
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]bool, 0, min(int(n), 1024))
	for i := uint64(0); i < n; i++ {
		v, err := d.boolval()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func (d *decoder) uints() ([]uint64, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxSliceLen {
		return nil, ErrOversized
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]uint64, 0, min(int(n), 1024))
	for i := uint64(0); i < n; i++ {
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func (d *decoder) ints() ([]int, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxSliceLen {
		return nil, ErrOversized
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int, 0, min(int(n), 1024))
	for i := uint64(0); i < n; i++ {
		v, err := d.intval()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func (d *decoder) strs() ([]string, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxSliceLen {
		return nil, ErrOversized
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]string, 0, min(int(n), 1024))
	for i := uint64(0); i < n; i++ {
		s, err := d.str()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (d *decoder) config() (Config, error) {
	var c Config
	b, err := d.byteval()
	if err != nil {
		return c, err
	}
	c.Scheme = Scheme(b)
	if c.X, err = d.intval(); err != nil {
		return c, err
	}
	if c.Y, err = d.intval(); err != nil {
		return c, err
	}
	if c.Seed, err = d.uvarint(); err != nil {
		return c, err
	}
	if c.RSReplace, err = d.boolval(); err != nil {
		return c, err
	}
	if c.Coordinators, err = d.intval(); err != nil {
		return c, err
	}
	if c.ZoneSpread, err = d.boolval(); err != nil {
		return c, err
	}
	return c, nil
}
