package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

// TestParseFrameBodyVersions pins the classification rule: a body
// opening with a message kind is v1, the marker byte is v2, and
// anything else is a version error, never a misparse.
func TestParseFrameBodyVersions(t *testing.T) {
	payload := Encode(Lookup{Key: "k", T: 3})

	fb, err := ParseFrameBody(payload)
	if err != nil || fb.Version != 1 || !bytes.Equal(fb.Payload, payload) {
		t.Fatalf("v1 body: got %+v, %v", fb, err)
	}

	v2 := AppendFrameV2(nil, 42, Lookup{Key: "k", T: 3})
	fb, err = ParseFrameBody(v2[4:]) // strip the length prefix
	if err != nil || fb.Version != 2 || fb.ID != 42 || !bytes.Equal(fb.Payload, payload) {
		t.Fatalf("v2 body: got %+v, %v", fb, err)
	}
	if n := binary.BigEndian.Uint32(v2[:4]); int(n) != len(v2)-4 {
		t.Fatalf("v2 length prefix %d, body %d", n, len(v2)-4)
	}

	if _, err := ParseFrameBody([]byte{0xEE, 1, 2}); !errors.Is(err, ErrFrameVersion) {
		t.Fatalf("unknown leading byte: err = %v, want ErrFrameVersion", err)
	}
	if _, err := ParseFrameBody(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty body: err = %v, want ErrTruncated", err)
	}
	for cut := 1; cut <= FrameV2Overhead; cut++ {
		if _, err := ParseFrameBody(v2[4 : 4+cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("v2 body cut to %d bytes: err = %v, want ErrTruncated", cut, err)
		}
	}
}

// TestAppendFrameV1MatchesLegacyLayout pins that the v1 append helper
// produces the exact [4-byte len][Encode(msg)] layout the original
// transport framed, so old and new peers agree byte for byte.
func TestAppendFrameV1MatchesLegacyLayout(t *testing.T) {
	msg := Add{Key: "k", Config: Config{Scheme: Fixed, X: 2}, Entry: "v"}
	payload := Encode(msg)
	frame := AppendFrameV1(nil, msg)
	if int(binary.BigEndian.Uint32(frame[:4])) != len(payload) {
		t.Fatalf("v1 length prefix %d, want %d", binary.BigEndian.Uint32(frame[:4]), len(payload))
	}
	if !bytes.Equal(frame[4:], payload) {
		t.Fatal("v1 frame payload differs from Encode output")
	}
}

// FuzzMuxFrame throws arbitrary frame bodies at the classifier: it
// must never panic, and any body it accepts must — when its payload
// also decodes — re-frame to an identical body through the matching
// append helper (round-trip stability across the mux framing layer).
func FuzzMuxFrame(f *testing.F) {
	for _, msg := range allMessages() {
		f.Add(Encode(msg))                    // v1 bodies
		f.Add(AppendFrameV2(nil, 7, msg)[4:]) // v2 bodies
		f.Add(AppendFrameV2(nil, ^uint64(0), msg)[4:])
	}
	// Version skew: a v2 header wrapping a v2 header, and the marker
	// colliding with payload content.
	inner := AppendFrameV2(nil, 1, Ping{})[4:]
	f.Add(append(append([]byte{FrameV2Marker}, make([]byte, 8)...), inner...))
	f.Add([]byte{FrameV2Marker})
	// Truncated v2 headers: marker plus partial request id.
	for cut := 1; cut < FrameV2Overhead; cut++ {
		f.Add(AppendFrameV2(nil, 99, Ping{})[4 : 4+cut])
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, body []byte) {
		fb, err := ParseFrameBody(body)
		if err != nil {
			return
		}
		msg, err := Decode(fb.Payload)
		if err != nil {
			return
		}
		var reframed []byte
		switch fb.Version {
		case 1:
			reframed = AppendFrameV1(nil, msg)
		case 2:
			reframed = AppendFrameV2(nil, fb.ID, msg)
		default:
			t.Fatalf("impossible frame version %d", fb.Version)
		}
		// Non-canonical varints may re-encode shorter, so compare the
		// classified meaning, not the bytes.
		fb2, err := ParseFrameBody(reframed[4:])
		if err != nil {
			t.Fatalf("re-framed body rejected: %v", err)
		}
		if fb2.Version != fb.Version || fb2.ID != fb.ID {
			t.Fatalf("re-framed header changed: %+v vs %+v", fb2, fb)
		}
		msg2, err := Decode(fb2.Payload)
		if err != nil {
			t.Fatalf("re-framed payload rejected: %v", err)
		}
		if !reflect.DeepEqual(msg, msg2) {
			t.Fatalf("round trip changed message: %#v vs %#v", msg, msg2)
		}
	})
}
