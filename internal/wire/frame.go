package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame format. A frame is a 4-byte big-endian length prefix followed
// by the frame body; the length counts only the body. Two body layouts
// exist (see DESIGN.md §12):
//
//	v1:  [kind byte][fields...]                      — one in-flight
//	     request per connection, replies matched by order.
//	v2:  [0xF2][8-byte BE request id][kind byte][fields...]
//	     — multiplexed: many in-flight requests per connection, each
//	     reply tagged with the id of the request it answers.
//
// The encoded message payload is byte-identical between versions; v2
// only prepends the marker and request id. The marker 0xF2 can never
// open a v1 body, because a v1 body always starts with a message kind
// and kinds are small integers — so a single leading byte classifies
// every frame. A connection speaks exactly one version: the first
// frame fixes it, and a peer that switches versions mid-stream is
// rejected as malformed (ErrFrameVersion), never half-interpreted.

const (
	// FrameV2Marker opens a v2 (multiplexed) frame body.
	FrameV2Marker = 0xF2
	// FrameV2Overhead is the v2 header size inside the body: the
	// marker byte plus the 8-byte request id.
	FrameV2Overhead = 9
	// MaxFrameBody bounds a frame body: the payload cap plus the v2
	// header.
	MaxFrameBody = MaxPayload + FrameV2Overhead
)

// ErrFrameVersion reports a frame whose leading byte is neither a
// known message kind (v1) nor the v2 marker, or a version switch on a
// connection that already fixed its version.
var ErrFrameVersion = errors.New("wire: unsupported frame version")

// FrameBody is a classified frame body.
type FrameBody struct {
	// Version is 1 or 2.
	Version int
	// ID is the request id tagging a v2 frame; zero for v1.
	ID uint64
	// Payload is the encoded message, aliasing the input body.
	Payload []byte
}

// ParseFrameBody classifies one frame body (the bytes after the length
// prefix) without decoding the message payload. It never panics on
// malformed input.
func ParseFrameBody(body []byte) (FrameBody, error) {
	if len(body) == 0 {
		return FrameBody{}, ErrTruncated
	}
	if len(body) > MaxFrameBody {
		return FrameBody{}, ErrOversized
	}
	if body[0] == FrameV2Marker {
		if len(body) < FrameV2Overhead+1 {
			return FrameBody{}, fmt.Errorf("%w: %d-byte v2 frame body", ErrTruncated, len(body))
		}
		return FrameBody{
			Version: 2,
			ID:      binary.BigEndian.Uint64(body[1 : 1+8]),
			Payload: body[FrameV2Overhead:],
		}, nil
	}
	if !Kind(body[0]).known() {
		return FrameBody{}, fmt.Errorf("%w: leading byte %#x", ErrFrameVersion, body[0])
	}
	return FrameBody{Version: 1, Payload: body}, nil
}

// known reports whether k is a defined message kind. It bounds the v1
// arm of frame classification; Decode re-checks, so a kind added there
// but not here fails closed.
func (k Kind) known() bool { return k >= KindPlace && k <= KindRebalancePush }

// AppendFrameV2 appends one complete v2 frame — length prefix, marker,
// request id, and msg's encoding — to dst and returns the extended
// slice. Like AppendEncode it allocates nothing when dst has capacity.
func AppendFrameV2(dst []byte, id uint64, msg Message) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, FrameV2Marker)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = AppendEncode(dst, msg)
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// AppendFrameV1 appends one complete v1 frame (length prefix and msg's
// encoding) to dst and returns the extended slice.
func AppendFrameV1(dst []byte, msg Message) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = AppendEncode(dst, msg)
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}
