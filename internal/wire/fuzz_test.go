package wire

import (
	"reflect"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the codec: it must never panic,
// and anything it accepts must re-encode/decode to the same message
// (round-trip stability).
func FuzzDecode(f *testing.F) {
	for _, msg := range allMessages() {
		f.Add(Encode(msg))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(msg)
		msg2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if !reflect.DeepEqual(msg, msg2) {
			t.Fatalf("round trip changed message: %#v vs %#v", msg, msg2)
		}
	})
}

// FuzzConfigRoundTrip fuzzes the config sub-codec through Place.
func FuzzConfigRoundTrip(f *testing.F) {
	f.Add(uint8(1), 0, 0, uint64(0), false, 0, false)
	f.Add(uint8(5), 3, 7, uint64(1<<60), true, 4, true)
	f.Fuzz(func(t *testing.T, scheme uint8, x, y int, seed uint64, rsReplace bool, coords int, zoneSpread bool) {
		// The codec deliberately rejects counts above MaxInt32
		// (ErrOversized), so keep fuzz inputs inside the valid domain.
		const maxInt32 = 1<<31 - 1
		if x < 0 || y < 0 || coords < 0 || x > maxInt32 || y > maxInt32 || coords > maxInt32 {
			return
		}
		cfg := Config{Scheme: Scheme(scheme), X: x, Y: y, Seed: seed, RSReplace: rsReplace, Coordinators: coords, ZoneSpread: zoneSpread}
		msg := Place{Key: "k", Config: cfg}
		got, err := Decode(Encode(msg))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.(Place).Config != cfg {
			t.Fatalf("config round trip: %+v vs %+v", got.(Place).Config, cfg)
		}
	})
}
