package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestGenerateFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/ from the codec itself, so CI fuzzing starts from every
// message kind the wire format can produce rather than from scratch.
// It is a generator, not a test: it only runs when WIRE_GEN_CORPUS=1
// is set, e.g.
//
//	WIRE_GEN_CORPUS=1 go test ./internal/wire -run TestGenerateFuzzCorpus
//
// The emitted files use the go-fuzz corpus encoding ("go test fuzz v1"
// plus one Go literal per fuzz argument); plain `go test` replays them
// as seeds, so a formatting mistake here fails the ordinary test run.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("WIRE_GEN_CORPUS") == "" {
		t.Skip("set WIRE_GEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}

	writeSeed := func(dir, name string, lines ...string) {
		t.Helper()
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := "go test fuzz v1\n"
		for _, l := range lines {
			body += l + "\n"
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	decodeDir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	for i, msg := range allMessages() {
		writeSeed(decodeDir, fmt.Sprintf("seed-%02d-%T", i, msg),
			fmt.Sprintf("[]byte(%s)", strconv.Quote(string(Encode(msg)))))
	}
	// Malformed inputs worth keeping near the decoder's edge cases: an
	// empty buffer, an unknown kind, and a truncated length prefix.
	writeSeed(decodeDir, "seed-empty", `[]byte("")`)
	writeSeed(decodeDir, "seed-bad-kind", fmt.Sprintf("[]byte(%s)", strconv.Quote("\xff\x00\x01")))
	writeSeed(decodeDir, "seed-truncated",
		fmt.Sprintf("[]byte(%s)", strconv.Quote(string(Encode(Place{Key: "k"}))[:3])))

	configDir := filepath.Join("testdata", "fuzz", "FuzzConfigRoundTrip")
	for i, cfg := range []Config{
		{Scheme: FullReplication},
		{Scheme: Fixed, X: 20},
		{Scheme: RandomServer, X: 20, RSReplace: true},
		{Scheme: RoundRobin, Y: 3, Coordinators: 2},
		{Scheme: Hash, Y: 2, Seed: 1 << 60},
		{Scheme: MultiProbe, Y: 3, Seed: 0xfeed},
		{Scheme: Hash, Y: 3, Seed: 7, ZoneSpread: true},
	} {
		writeSeed(configDir, fmt.Sprintf("seed-%02d-%s", i, cfg.Scheme),
			fmt.Sprintf("byte(%s)", strconv.QuoteRune(rune(cfg.Scheme))),
			fmt.Sprintf("int(%d)", cfg.X),
			fmt.Sprintf("int(%d)", cfg.Y),
			fmt.Sprintf("uint64(%d)", cfg.Seed),
			fmt.Sprintf("bool(%v)", cfg.RSReplace),
			fmt.Sprintf("int(%d)", cfg.Coordinators),
			fmt.Sprintf("bool(%v)", cfg.ZoneSpread))
	}
}
