package stats

import (
	"fmt"
	"math"
)

// LifetimeDist generates entry lifetimes for the dynamic-update study
// (Sec. 6.1 of the paper). Both paper distributions are provided:
// exponential (not tail-heavy) and Zipf-like (tail-heavy).
type LifetimeDist interface {
	// Sample draws one lifetime in simulated time units.
	Sample(r *RNG) float64
	// Mean returns the distribution's expectation.
	Mean() float64
	// Name returns the label the paper's figures use ("exp", "zipf").
	Name() string
}

// Exponential is the exponential lifetime distribution with the given
// mean: P(t) = (1/mean)·e^(-t/mean) for t >= 0.
type Exponential struct {
	mean float64
}

// NewExponential returns an exponential distribution with the given mean.
// It panics if mean <= 0 (a configuration bug).
func NewExponential(mean float64) Exponential {
	if mean <= 0 {
		panic("stats: NewExponential requires mean > 0")
	}
	return Exponential{mean: mean}
}

// Sample draws an exponential lifetime.
func (d Exponential) Sample(r *RNG) float64 { return d.mean * r.ExpFloat64() }

// Mean returns the distribution mean.
func (d Exponential) Mean() float64 { return d.mean }

// Name returns "exp".
func (d Exponential) Name() string { return "exp" }

// ZipfLifetime is the paper's Zipf-like lifetime distribution:
// density P(t) = 1/(t·ln C) for t in [1, C]. Its mean is
// (C-1)/ln C. The paper scales C so the mean matches the steady-state
// target; use NewZipfLifetimeWithMean for that.
type ZipfLifetime struct {
	c float64
}

// NewZipfLifetime returns a Zipf-like distribution over [1, C].
// It panics if c <= 1.
func NewZipfLifetime(c float64) ZipfLifetime {
	if c <= 1 {
		panic("stats: NewZipfLifetime requires C > 1")
	}
	return ZipfLifetime{c: c}
}

// NewZipfLifetimeWithMean returns a Zipf-like distribution whose mean is
// (approximately) the given value, solving (C-1)/ln C = mean for C by
// bisection. It panics if mean <= 1.
func NewZipfLifetimeWithMean(mean float64) ZipfLifetime {
	if mean <= 1 {
		panic("stats: NewZipfLifetimeWithMean requires mean > 1")
	}
	lo, hi := 1.0+1e-9, 10.0
	f := func(c float64) float64 { return (c - 1) / math.Log(c) }
	for f(hi) < mean {
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) < mean {
			lo = mid
		} else {
			hi = mid
		}
	}
	return ZipfLifetime{c: (lo + hi) / 2}
}

// Sample draws a lifetime by inverse transform: the CDF is
// F(t) = ln t / ln C, so t = C^u for uniform u.
func (d ZipfLifetime) Sample(r *RNG) float64 {
	return math.Pow(d.c, r.Float64())
}

// Mean returns the distribution mean (C-1)/ln C.
func (d ZipfLifetime) Mean() float64 { return (d.c - 1) / math.Log(d.c) }

// C returns the upper bound of the support.
func (d ZipfLifetime) C() float64 { return d.c }

// Name returns "zipf".
func (d ZipfLifetime) Name() string { return "zipf" }

// PoissonProcess generates the inter-arrival times of a Poisson process
// with the given mean inter-arrival time (the paper uses mean 10 time
// units per add event).
type PoissonProcess struct {
	meanGap float64
}

// NewPoissonProcess returns a process with the given mean inter-arrival
// gap. It panics if meanGap <= 0.
func NewPoissonProcess(meanGap float64) PoissonProcess {
	if meanGap <= 0 {
		panic("stats: NewPoissonProcess requires meanGap > 0")
	}
	return PoissonProcess{meanGap: meanGap}
}

// NextGap draws the time until the next arrival.
func (p PoissonProcess) NextGap(r *RNG) float64 { return p.meanGap * r.ExpFloat64() }

// MeanGap returns the configured mean inter-arrival time.
func (p PoissonProcess) MeanGap() float64 { return p.meanGap }

// Zipf draws ranks 1..n with probability proportional to 1/rank^s. It is
// used by the example workloads to skew key popularity (hot songs), not
// by the paper's own experiments. Sampling is by precomputed CDF and
// binary search.
type Zipf struct {
	cdf []float64
	s   float64
}

// NewZipf returns a Zipf distribution over ranks 1..n with exponent s.
// It panics unless n >= 1 and s >= 0.
func NewZipf(n int, s float64) *Zipf {
	if n < 1 || s < 0 {
		panic("stats: NewZipf requires n >= 1 and s >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, s: s}
}

// Sample draws a rank in [1, n].
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// String describes the distribution for logs.
func (z *Zipf) String() string {
	return fmt.Sprintf("zipf(n=%d, s=%.2f)", len(z.cdf), z.s)
}
