// Package stats provides the deterministic randomness, probability
// distributions, and summary statistics used throughout the reproduction.
//
// Every simulation in the repository takes an explicit *RNG so that runs
// are reproducible from a seed; there are no package-level random sources
// (see the Uber style guide's "Avoid Mutable Globals").
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**). Its sequence is stable across Go releases, which keeps
// golden-value tests meaningful. RNG is not safe for concurrent use; give
// each goroutine its own via Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, so that
// nearby seeds yield uncorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent generator from r's stream, for use by a
// different component (e.g. one RNG per server node).
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// IntN returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int {
	if n <= 0 {
		panic("stats: IntN called with n <= 0")
	}
	return int(r.Uint64N(uint64(n)))
}

// Uint64N returns a uniform uint64 in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (r *RNG) Uint64N(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64N called with n == 0")
	}
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo < n {
			thresh := -n % n
			if lo < thresh {
				continue
			}
		}
		return hi
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1,
// via inverse-transform sampling.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniform random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.IntN(i+1))
	}
}

// SampleInts returns k distinct uniform values from [0, n). It panics if
// k > n or k < 0. The result is in random order.
func (r *RNG) SampleInts(n, k int) []int {
	if k < 0 || k > n {
		panic("stats: SampleInts requires 0 <= k <= n")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = idx[i]
	}
	return out
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }
