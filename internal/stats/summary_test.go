package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryKnownValues(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Population variance is 4; sample variance is 32/7.
	if got, want := s.Variance(), 32.0/7; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryZeroValue(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 || s.CI95() != 0 {
		t.Fatal("zero-value summary not all-zero")
	}
	s.Observe(3)
	if s.Variance() != 0 {
		t.Fatal("single observation variance nonzero")
	}
	if s.Mean() != 3 || s.Min() != 3 || s.Max() != 3 {
		t.Fatal("single observation stats wrong")
	}
}

func TestSummaryCI95Shrinks(t *testing.T) {
	r := NewRNG(1)
	var small, large Summary
	for i := 0; i < 100; i++ {
		small.Observe(r.Float64())
	}
	for i := 0; i < 10000; i++ {
		large.Observe(r.Float64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

// TestSummaryQuickMatchesTwoPass property-tests Welford against the
// naive two-pass mean/variance.
func TestSummaryQuickMatchesTwoPass(t *testing.T) {
	check := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var s Summary
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
			s.Observe(vals[i])
		}
		mean := 0.0
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		varSum := 0.0
		for _, v := range vals {
			varSum += (v - mean) * (v - mean)
		}
		variance := varSum / float64(len(vals)-1)
		return math.Abs(s.Mean()-mean) < 1e-6 && math.Abs(s.Variance()-variance) < 1e-4
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCoV(t *testing.T) {
	// Paper example (Sec. 4.5): managing 2 entries with Fixed-1 and
	// t=1 returns entry 1 always: probabilities (1, 0), ideal 1/2,
	// unfairness exactly 1.
	if got := CoV([]float64{1, 0}, 0.5); math.Abs(got-1) > 1e-12 {
		t.Fatalf("CoV Fixed-1 example = %v, want 1", got)
	}
	// A perfectly fair assignment has zero unfairness.
	if got := CoV([]float64{0.5, 0.5}, 0.5); got != 0 {
		t.Fatalf("CoV fair = %v, want 0", got)
	}
	// Degenerate inputs.
	if CoV(nil, 0.5) != 0 || CoV([]float64{1}, 0) != 0 {
		t.Fatal("degenerate CoV not 0")
	}
}

func TestCoVFixedXFormula(t *testing.T) {
	// Sec. 6.3: Fixed-20 on 100 entries with t=1 has unfairness
	// exactly 2: p = 1/20 for 20 entries, 0 for 80, ideal 1/100.
	probs := make([]float64, 100)
	for i := 0; i < 20; i++ {
		probs[i] = 1.0 / 20
	}
	if got := CoV(probs, 1.0/100); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Fixed-20 t=1 unfairness = %v, want 2", got)
	}
}

func TestMeanHelper(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
}
