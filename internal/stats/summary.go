package stats

import "math"

// Summary accumulates a stream of float64 observations and reports
// mean, variance, and confidence intervals using Welford's online
// algorithm (numerically stable, single pass). The zero value is ready
// for use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe adds one observation.
func (s *Summary) Observe(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (n-1 denominator), or 0
// with fewer than two observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval around the mean. The paper reports intervals below 0.1% of the
// mean at its fidelity; we expose the interval so harness output can
// state the achieved precision.
func (s *Summary) CI95() float64 { return 1.96 * s.StdErr() }

// CoV computes the coefficient of variation of values around the ideal
// reference value: sqrt(mean((v-ideal)^2)) / ideal. With ideal = t/h and
// values = per-entry return probabilities this is exactly the paper's
// unfairness metric U_I (Eq. 1, Sec. 4.5).
func CoV(values []float64, ideal float64) float64 {
	if len(values) == 0 || ideal == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		d := v - ideal
		sum += d * d
	}
	return math.Sqrt(sum/float64(len(values))) / ideal
}

// Mean returns the arithmetic mean of values, or 0 for an empty slice.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}
