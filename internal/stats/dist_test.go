package stats

import (
	"math"
	"testing"
)

func sampleMean(t *testing.T, f func() float64, n int) float64 {
	t.Helper()
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += f()
	}
	return sum / float64(n)
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(1)
	d := NewExponential(1000)
	if d.Mean() != 1000 {
		t.Fatalf("Mean = %v, want 1000", d.Mean())
	}
	if d.Name() != "exp" {
		t.Fatalf("Name = %q", d.Name())
	}
	got := sampleMean(t, func() float64 { return d.Sample(r) }, 50000)
	if got < 950 || got > 1050 {
		t.Fatalf("sample mean = %v, want ~1000", got)
	}
}

func TestExponentialPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewExponential(0) did not panic")
		}
	}()
	NewExponential(0)
}

func TestZipfLifetimeSupportAndMean(t *testing.T) {
	r := NewRNG(2)
	d := NewZipfLifetimeWithMean(1000)
	if m := d.Mean(); math.Abs(m-1000) > 1 {
		t.Fatalf("Mean = %v, want ~1000", m)
	}
	if d.Name() != "zipf" {
		t.Fatalf("Name = %q", d.Name())
	}
	// Samples must lie in [1, C]; empirical mean should approach 1000.
	// The distribution is heavy-tailed, so allow a wide tolerance.
	c := d.C()
	sum := 0.0
	const trials = 200000
	for i := 0; i < trials; i++ {
		v := d.Sample(r)
		if v < 1 || v > c {
			t.Fatalf("sample %v outside [1, %v]", v, c)
		}
		sum += v
	}
	if got := sum / trials; got < 850 || got > 1150 {
		t.Fatalf("zipf sample mean = %v, want ~1000", got)
	}
}

func TestZipfLifetimeAnalyticMean(t *testing.T) {
	// Mean of density 1/(t ln C) on [1, C] is (C-1)/ln C.
	d := NewZipfLifetime(math.E)
	if m := d.Mean(); math.Abs(m-(math.E-1)) > 1e-12 {
		t.Fatalf("Mean = %v, want e-1", m)
	}
}

func TestZipfLifetimeHeavierTailThanExp(t *testing.T) {
	// With equal means, the zipf-like distribution has more mass in
	// very short lifetimes AND in the extreme tail than the
	// exponential (the paper chose it as the tail-heavy contrast).
	r := NewRNG(3)
	zipf := NewZipfLifetimeWithMean(1000)
	exp := NewExponential(1000)
	const trials = 100000
	zipfShort, expShort := 0, 0
	for i := 0; i < trials; i++ {
		if zipf.Sample(r) < 10 {
			zipfShort++
		}
		if exp.Sample(r) < 10 {
			expShort++
		}
	}
	if zipfShort <= expShort {
		t.Fatalf("zipf short-lifetime count %d <= exp %d; want zipf heavier near zero", zipfShort, expShort)
	}
}

func TestPoissonProcessMeanGap(t *testing.T) {
	r := NewRNG(4)
	p := NewPoissonProcess(10)
	if p.MeanGap() != 10 {
		t.Fatalf("MeanGap = %v", p.MeanGap())
	}
	got := sampleMean(t, func() float64 { return p.NextGap(r) }, 50000)
	if got < 9.5 || got > 10.5 {
		t.Fatalf("mean gap = %v, want ~10", got)
	}
}

func TestZipfRankDistribution(t *testing.T) {
	r := NewRNG(5)
	z := NewZipf(10, 1.0)
	const trials = 100000
	counts := make([]int, 11)
	for i := 0; i < trials; i++ {
		rank := z.Sample(r)
		if rank < 1 || rank > 10 {
			t.Fatalf("rank %d out of [1,10]", rank)
		}
		counts[rank]++
	}
	// P(rank 1)/P(rank 2) should be ~2 with s=1.
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("rank1/rank2 ratio = %v, want ~2", ratio)
	}
	if counts[1] <= counts[10] {
		t.Fatal("rank 1 not more popular than rank 10")
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := NewRNG(6)
	z := NewZipf(4, 0)
	const trials = 40000
	counts := make([]int, 5)
	for i := 0; i < trials; i++ {
		counts[z.Sample(r)]++
	}
	for rank := 1; rank <= 4; rank++ {
		if counts[rank] < 9000 || counts[rank] > 11000 {
			t.Fatalf("s=0 rank %d count %d, want ~10000", rank, counts[rank])
		}
	}
}

func TestZipfString(t *testing.T) {
	if got := NewZipf(10, 1.5).String(); got != "zipf(n=10, s=1.50)" {
		t.Fatalf("String = %q", got)
	}
}

func TestNewZipfLifetimeWithMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mean <= 1 did not panic")
		}
	}()
	NewZipfLifetimeWithMean(1)
}
