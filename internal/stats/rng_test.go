package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed RNGs agreed on %d of 100 outputs", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 10; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 9 {
		t.Fatalf("seed-0 RNG produced only %d distinct values in 10 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split RNGs agreed on %d of 100 outputs", same)
	}
}

func TestIntNBoundsAndPanic(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.IntN(7); v < 0 || v >= 7 {
			t.Fatalf("IntN(7) = %d out of range", v)
		}
	}
	if v := r.IntN(1); v != 0 {
		t.Fatalf("IntN(1) = %d, want 0", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	r.IntN(0)
}

func TestIntNUniform(t *testing.T) {
	r := NewRNG(5)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.IntN(n)]++
	}
	mean := float64(trials) / n
	sigma := math.Sqrt(float64(trials) * (1.0 / n) * (1 - 1.0/n))
	for i, c := range counts {
		if d := math.Abs(float64(c) - mean); d > 5*sigma {
			t.Errorf("bucket %d: count %d deviates %0.f > 5 sigma from %0.f", i, c, d, mean)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / 10000; mean < 0.48 || mean > 0.52 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	sum := 0.0
	const trials = 50000
	for i := 0; i < trials; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 = %v negative", v)
		}
		sum += v
	}
	if mean := sum / trials; mean < 0.97 || mean > 1.03 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(6)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := NewRNG(8)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	mean := float64(trials) / n
	sigma := math.Sqrt(float64(trials) * 0.2 * 0.8)
	for i, c := range counts {
		if math.Abs(float64(c)-mean) > 5*sigma {
			t.Errorf("Perm first element %d count %d, want ~%0.f", i, c, mean)
		}
	}
}

func TestSampleInts(t *testing.T) {
	r := NewRNG(9)
	got := r.SampleInts(10, 4)
	if len(got) != 4 {
		t.Fatalf("SampleInts(10,4) len = %d", len(got))
	}
	seen := make(map[int]bool)
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("SampleInts(10,4) = %v invalid", got)
		}
		seen[v] = true
	}
	if len(r.SampleInts(5, 5)) != 5 {
		t.Fatal("SampleInts(5,5) wrong length")
	}
	if len(r.SampleInts(5, 0)) != 0 {
		t.Fatal("SampleInts(5,0) not empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SampleInts(3,4) did not panic")
		}
	}()
	r.SampleInts(3, 4)
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(10)
	const trials = 50000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / trials
	if p < 0.28 || p > 0.32 {
		t.Fatalf("Bool(0.3) frequency = %v", p)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1.1) {
		t.Fatal("Bool(1.1) returned false")
	}
}

func TestUint64NQuick(t *testing.T) {
	r := NewRNG(11)
	check := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64N(n) < n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMul64(t *testing.T) {
	tests := []struct {
		x, y   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, tc := range tests {
		hi, lo := mul64(tc.x, tc.y)
		if hi != tc.hi || lo != tc.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", tc.x, tc.y, hi, lo, tc.hi, tc.lo)
		}
	}
}
