package sim

// Trace-driven workloads (YCSB-style): a keyspace with Zipf-distributed
// popularity, an initial per-key population, and a mixed stream of
// lookup/add/delete operations. Where the Sec. 6.1 stream exercises one
// key's steady-state churn in depth, a trace exercises breadth — many
// keys, skewed access, the regime the 10k-node scale target cares
// about, where route caches and zone-aware ordering either pay off on
// the hot keys or don't.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/entry"
	"repro/internal/stats"
)

// OpKind discriminates trace operations.
type OpKind int

// Trace operation kinds.
const (
	OpLookup OpKind = iota + 1
	OpAdd
	OpDelete
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpLookup:
		return "lookup"
	case OpAdd:
		return "add"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// TraceOp is one operation against one key. Entry is set for add and
// delete ops only.
type TraceOp struct {
	Kind  OpKind
	Key   int // index into the keyspace; key name is "k<Key>"
	Entry entry.Entry
}

// TraceConfig parameterizes a trace.
type TraceConfig struct {
	// Keys is the keyspace size.
	Keys int
	// EntriesPerKey is the initial population placed for every key.
	EntriesPerKey int
	// Ops is the number of operations to generate.
	Ops int
	// ZipfS is the popularity exponent: key rank i is drawn with weight
	// 1/i^s. YCSB's default skew is 0.99; 0 means uniform.
	ZipfS float64
	// LookupFrac is the fraction of ops that are lookups; the remainder
	// splits evenly between adds and deletes (a delete against an empty
	// key becomes an add, so the population never goes negative).
	LookupFrac float64
}

func (c TraceConfig) validate() error {
	if c.Keys <= 0 {
		return fmt.Errorf("sim: trace Keys must be > 0, got %d", c.Keys)
	}
	if c.EntriesPerKey < 0 {
		return fmt.Errorf("sim: trace EntriesPerKey must be >= 0, got %d", c.EntriesPerKey)
	}
	if c.Ops < 0 {
		return fmt.Errorf("sim: trace Ops must be >= 0, got %d", c.Ops)
	}
	if c.ZipfS < 0 {
		return fmt.Errorf("sim: trace ZipfS must be >= 0, got %g", c.ZipfS)
	}
	if c.LookupFrac < 0 || c.LookupFrac > 1 {
		return fmt.Errorf("sim: trace LookupFrac must be in [0,1], got %g", c.LookupFrac)
	}
	return nil
}

// KeyName returns the service key for keyspace index i.
func KeyName(i int) string { return fmt.Sprintf("k%d", i) }

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s, by inversion over a precomputed CDF (O(n) setup,
// O(log n) per draw). Deterministic given the RNG stream.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent s.
func NewZipf(n int, s float64) *Zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Sample draws one rank.
func (z *Zipf) Sample(rng *stats.RNG) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Trace is a generated workload: the initial population of every key
// (placed before the clock starts) and the operation stream.
type Trace struct {
	Initial [][]entry.Entry
	Ops     []TraceOp
}

// GenerateTrace builds a trace. Entry names are globally unique
// ("e<id>") so cross-key collisions cannot mask placement bugs.
// Deletes target a uniformly random live entry of the drawn key;
// the generator tracks the live population so the stream is always
// applicable (no delete of an absent entry).
func GenerateTrace(rng *stats.RNG, cfg TraceConfig) (Trace, error) {
	if err := cfg.validate(); err != nil {
		return Trace{}, err
	}
	var tr Trace
	nextID := 0
	newEntry := func() entry.Entry {
		nextID++
		return entry.Entry(fmt.Sprintf("e%d", nextID))
	}

	live := make([][]entry.Entry, cfg.Keys)
	tr.Initial = make([][]entry.Entry, cfg.Keys)
	for k := range tr.Initial {
		tr.Initial[k] = make([]entry.Entry, cfg.EntriesPerKey)
		for i := range tr.Initial[k] {
			tr.Initial[k][i] = newEntry()
		}
		live[k] = append([]entry.Entry(nil), tr.Initial[k]...)
	}

	zipf := NewZipf(cfg.Keys, cfg.ZipfS)
	tr.Ops = make([]TraceOp, 0, cfg.Ops)
	for len(tr.Ops) < cfg.Ops {
		k := zipf.Sample(rng)
		u := rng.Float64()
		switch {
		case u < cfg.LookupFrac:
			tr.Ops = append(tr.Ops, TraceOp{Kind: OpLookup, Key: k})
		case u < cfg.LookupFrac+(1-cfg.LookupFrac)/2 || len(live[k]) == 0:
			v := newEntry()
			live[k] = append(live[k], v)
			tr.Ops = append(tr.Ops, TraceOp{Kind: OpAdd, Key: k, Entry: v})
		default:
			i := rng.IntN(len(live[k]))
			v := live[k][i]
			live[k][i] = live[k][len(live[k])-1]
			live[k] = live[k][:len(live[k])-1]
			tr.Ops = append(tr.Ops, TraceOp{Kind: OpDelete, Key: k, Entry: v})
		}
	}
	return tr, nil
}
