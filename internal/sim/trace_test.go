package sim

import (
	"testing"

	"repro/internal/entry"
	"repro/internal/stats"
)

func TestGenerateTraceShape(t *testing.T) {
	cfg := TraceConfig{Keys: 10, EntriesPerKey: 20, Ops: 500, ZipfS: 0.99, LookupFrac: 0.6}
	tr, err := GenerateTrace(stats.NewRNG(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Initial) != cfg.Keys {
		t.Fatalf("initial keys %d, want %d", len(tr.Initial), cfg.Keys)
	}
	seen := make(map[entry.Entry]bool)
	for k, pop := range tr.Initial {
		if len(pop) != cfg.EntriesPerKey {
			t.Fatalf("key %d initial population %d, want %d", k, len(pop), cfg.EntriesPerKey)
		}
		for _, v := range pop {
			if seen[v] {
				t.Fatalf("entry %q appears in two keys' populations", v)
			}
			seen[v] = true
		}
	}
	if len(tr.Ops) != cfg.Ops {
		t.Fatalf("ops %d, want %d", len(tr.Ops), cfg.Ops)
	}

	// Replay the population arithmetic: every delete must target a live
	// entry of its key; adds introduce fresh entries.
	live := make([]map[entry.Entry]bool, cfg.Keys)
	for k, pop := range tr.Initial {
		live[k] = make(map[entry.Entry]bool, len(pop))
		for _, v := range pop {
			live[k][v] = true
		}
	}
	counts := map[OpKind]int{}
	for _, op := range tr.Ops {
		counts[op.Kind]++
		switch op.Kind {
		case OpAdd:
			if live[op.Key][op.Entry] {
				t.Fatalf("add of already-live entry %q", op.Entry)
			}
			live[op.Key][op.Entry] = true
		case OpDelete:
			if !live[op.Key][op.Entry] {
				t.Fatalf("delete of non-live entry %q for key %d", op.Entry, op.Key)
			}
			delete(live[op.Key], op.Entry)
		}
	}
	if counts[OpLookup] == 0 || counts[OpAdd] == 0 || counts[OpDelete] == 0 {
		t.Fatalf("op mix missing a kind: %v", counts)
	}
	frac := float64(counts[OpLookup]) / float64(cfg.Ops)
	if frac < 0.5 || frac > 0.7 {
		t.Fatalf("lookup fraction %.2f far from configured 0.6", frac)
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	cfg := TraceConfig{Keys: 5, EntriesPerKey: 10, Ops: 200, ZipfS: 1.1, LookupFrac: 0.5}
	a, err := GenerateTrace(stats.NewRNG(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(stats.NewRNG(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("op counts differ: %d vs %d", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a.Ops[i], b.Ops[i])
		}
	}
}

func TestZipfSkewAndUniform(t *testing.T) {
	rng := stats.NewRNG(3)
	z := NewZipf(100, 0.99)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.Sample(rng)]++
	}
	if counts[0] <= counts[50] || counts[0] <= counts[99] {
		t.Fatalf("zipf head not dominant: head=%d mid=%d tail=%d", counts[0], counts[50], counts[99])
	}
	// s=0 degenerates to uniform: head and tail within a loose factor.
	u := NewZipf(100, 0)
	counts = make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[u.Sample(rng)]++
	}
	if counts[0] > 3*counts[99]+30 {
		t.Fatalf("s=0 not uniform-ish: head=%d tail=%d", counts[0], counts[99])
	}
}
