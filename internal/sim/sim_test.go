package sim

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/entry"
	"repro/internal/stats"
)

func defaultConfig(t *testing.T, updates int) StreamConfig {
	t.Helper()
	lt, err := DefaultLifetime("exp", 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	return StreamConfig{
		MeanArrivalGap: 10,
		SteadyState:    100,
		Lifetime:       lt,
		Updates:        updates,
	}
}

func TestGenerateBasicShape(t *testing.T) {
	s, err := Generate(stats.NewRNG(1), defaultConfig(t, 500))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Initial) != 100 {
		t.Fatalf("initial population %d, want 100", len(s.Initial))
	}
	if len(s.Events) != 500 {
		t.Fatalf("events %d, want 500", len(s.Events))
	}
	// Events are in nondecreasing time order with positive times.
	prev := 0.0
	for i, ev := range s.Events {
		if ev.Time < prev {
			t.Fatalf("event %d out of order: %v < %v", i, ev.Time, prev)
		}
		if ev.Time < 0 {
			t.Fatalf("negative event time %v", ev.Time)
		}
		if ev.Kind != EventAdd && ev.Kind != EventDelete {
			t.Fatalf("event %d has kind %v", i, ev.Kind)
		}
		if ev.Entry == "" {
			t.Fatalf("event %d has empty entry", i)
		}
		prev = ev.Time
	}
}

func TestGenerateDeleteMatchesPriorAdd(t *testing.T) {
	s, err := Generate(stats.NewRNG(2), defaultConfig(t, 2000))
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[entry.Entry]bool, 200)
	for _, v := range s.Initial {
		if live[v] {
			t.Fatalf("duplicate initial entry %s", v)
		}
		live[v] = true
	}
	for i, ev := range s.Events {
		switch ev.Kind {
		case EventAdd:
			if live[ev.Entry] {
				t.Fatalf("event %d adds already-live %s", i, ev.Entry)
			}
			live[ev.Entry] = true
		case EventDelete:
			if !live[ev.Entry] {
				t.Fatalf("event %d deletes non-live %s", i, ev.Entry)
			}
			delete(live, ev.Entry)
		}
	}
}

func TestGenerateSteadyState(t *testing.T) {
	// Population should hover around the steady state; average over
	// the replay should be within 20% of h for both distributions.
	for _, kind := range []string{"exp", "zipf"} {
		lt, err := DefaultLifetime(kind, 10, 100)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Generate(stats.NewRNG(3), StreamConfig{
			MeanArrivalGap: 10, SteadyState: 100, Lifetime: lt, Updates: 10000,
		})
		if err != nil {
			t.Fatal(err)
		}
		pops := s.Population()
		sum := 0
		for _, p := range pops {
			sum += p
			if p < 0 {
				t.Fatalf("%s: negative population", kind)
			}
		}
		avg := float64(sum) / float64(len(pops))
		if avg < 80 || avg > 120 {
			t.Fatalf("%s: average population %v, want ~100", kind, avg)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := stats.NewRNG(4)
	lt, _ := DefaultLifetime("exp", 10, 100)
	bad := []StreamConfig{
		{MeanArrivalGap: 0, SteadyState: 10, Lifetime: lt, Updates: 1},
		{MeanArrivalGap: 10, SteadyState: 0, Lifetime: lt, Updates: 1},
		{MeanArrivalGap: 10, SteadyState: 10, Lifetime: nil, Updates: 1},
		{MeanArrivalGap: 10, SteadyState: 10, Lifetime: lt, Updates: -1},
	}
	for i, cfg := range bad {
		if _, err := Generate(rng, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestDefaultLifetime(t *testing.T) {
	for _, tc := range []struct {
		kind string
		mean float64
	}{{"exp", 1000}, {"zipf", 1000}} {
		lt, err := DefaultLifetime(tc.kind, 10, 100)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lt.Mean()-tc.mean) > 1 {
			t.Fatalf("%s mean = %v, want %v", tc.kind, lt.Mean(), tc.mean)
		}
	}
	if _, err := DefaultLifetime("weibull", 10, 100); err == nil {
		t.Fatal("unknown lifetime kind accepted")
	}
}

func TestReplayAppliesAllInOrder(t *testing.T) {
	s, err := Generate(stats.NewRNG(5), defaultConfig(t, 300))
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	err = Replay(s.Events, func(ev Event) error {
		got = append(got, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s.Events) {
		t.Fatalf("applied %d of %d events", len(got), len(s.Events))
	}
}

func TestReplayStopsOnError(t *testing.T) {
	s, _ := Generate(stats.NewRNG(6), defaultConfig(t, 50))
	count := 0
	err := Replay(s.Events, func(Event) error {
		count++
		if count == 10 {
			return fmt.Errorf("stop here")
		}
		return nil
	})
	if err == nil || count != 10 {
		t.Fatalf("err=%v count=%d, want error at event 10", err, count)
	}
}

func TestReplayTimedIntervalAccounting(t *testing.T) {
	events := []Event{
		{Time: 1.0, Kind: EventAdd, Entry: "a"},
		{Time: 2.5, Kind: EventAdd, Entry: "b"},
		{Time: 2.5, Kind: EventDelete, Entry: "a"}, // simultaneous: zero-width interval skipped
		{Time: 4.0, Kind: EventDelete, Entry: "b"},
	}
	var intervals [][2]float64
	applied := 0
	err := ReplayTimed(events, func(Event) error {
		applied++
		return nil
	}, func(from, to float64) error {
		intervals = append(intervals, [2]float64{from, to})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 4 {
		t.Fatalf("applied %d, want 4", applied)
	}
	want := [][2]float64{{0, 1}, {1, 2.5}, {2.5, 4}}
	if len(intervals) != len(want) {
		t.Fatalf("intervals %v, want %v", intervals, want)
	}
	total := 0.0
	for i, iv := range intervals {
		if iv != want[i] {
			t.Fatalf("interval %d = %v, want %v", i, iv, want[i])
		}
		total += iv[1] - iv[0]
	}
	if math.Abs(total-4.0) > 1e-12 {
		t.Fatalf("total observed time %v, want 4", total)
	}
}

func TestReplayTimedNilObserver(t *testing.T) {
	events := []Event{{Time: 1, Kind: EventAdd, Entry: "a"}}
	if err := ReplayTimed(events, func(Event) error { return nil }, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventKindString(t *testing.T) {
	if EventAdd.String() != "add" || EventDelete.String() != "delete" {
		t.Fatal("kind strings wrong")
	}
	if EventKind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	gen := func() Stream {
		s, err := Generate(stats.NewRNG(123), defaultConfig(t, 200))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := gen(), gen()
	if len(a.Events) != len(b.Events) {
		t.Fatal("lengths differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
}
