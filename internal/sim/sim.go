// Package sim provides the discrete-time event-driven simulation of
// Sec. 6.1: synthetic update streams with Poisson add arrivals and
// lifetime-scheduled deletes, generated in advance and replayed against
// a service, plus a time-weighted observer for steady-state measures
// such as the Fixed-x lookup failure rate of Fig. 12.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/entry"
	"repro/internal/stats"
)

// EventKind discriminates update events.
type EventKind int

// Update event kinds.
const (
	EventAdd EventKind = iota + 1
	EventDelete
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventAdd:
		return "add"
	case EventDelete:
		return "delete"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one timestamped update.
type Event struct {
	Time  float64
	Kind  EventKind
	Entry entry.Entry
}

// StreamConfig parameterizes a synthetic update stream.
type StreamConfig struct {
	// MeanArrivalGap is the Poisson process's mean time between add
	// events; the paper uses 10 time units.
	MeanArrivalGap float64
	// SteadyState is the target number of entries h in the system.
	// Lifetimes should have mean MeanArrivalGap·SteadyState so the
	// expected population stays at h (Sec. 6.1).
	SteadyState int
	// Lifetime draws each entry's time-to-delete.
	Lifetime stats.LifetimeDist
	// Updates is the number of update events (adds + deletes) to
	// generate; the paper's default run is 10000.
	Updates int
}

// validate checks the config.
func (c StreamConfig) validate() error {
	if c.MeanArrivalGap <= 0 {
		return fmt.Errorf("sim: MeanArrivalGap must be > 0, got %g", c.MeanArrivalGap)
	}
	if c.SteadyState <= 0 {
		return fmt.Errorf("sim: SteadyState must be > 0, got %d", c.SteadyState)
	}
	if c.Lifetime == nil {
		return fmt.Errorf("sim: Lifetime distribution is required")
	}
	if c.Updates < 0 {
		return fmt.Errorf("sim: Updates must be >= 0, got %d", c.Updates)
	}
	return nil
}

// DefaultLifetime returns the paper's scaling of a lifetime
// distribution: mean = MeanArrivalGap·SteadyState (so with gap 10 and
// h=100, the mean lifetime is 1000 time units). kind is "exp" or
// "zipf".
func DefaultLifetime(kind string, meanArrivalGap float64, steadyState int) (stats.LifetimeDist, error) {
	mean := meanArrivalGap * float64(steadyState)
	switch kind {
	case "exp":
		return stats.NewExponential(mean), nil
	case "zipf":
		return stats.NewZipfLifetimeWithMean(mean), nil
	default:
		return nil, fmt.Errorf("sim: unknown lifetime kind %q (want exp or zipf)", kind)
	}
}

// Stream is a generated update stream: the initial steady-state
// population to place at time zero, followed by timestamped updates.
type Stream struct {
	Initial []entry.Entry
	Events  []Event
}

// eventHeap orders events by time.
type eventHeap []Event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].Time < h[j].Time }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Generate builds a stream per Sec. 6.1: the system starts at its
// steady state (SteadyState entries placed at time zero, each with a
// residual lifetime drawn from the lifetime distribution), then add
// events arrive as a Poisson process and each add schedules the
// matching delete at the end of the entry's lifetime. Exactly
// cfg.Updates events are emitted, in time order.
func Generate(rng *stats.RNG, cfg StreamConfig) (Stream, error) {
	if err := cfg.validate(); err != nil {
		return Stream{}, err
	}
	var s Stream
	var h eventHeap
	nextID := 0
	newEntry := func() entry.Entry {
		nextID++
		return entry.Entry(fmt.Sprintf("e%d", nextID))
	}

	s.Initial = make([]entry.Entry, cfg.SteadyState)
	for i := range s.Initial {
		v := newEntry()
		s.Initial[i] = v
		heap.Push(&h, Event{Time: cfg.Lifetime.Sample(rng), Kind: EventDelete, Entry: v})
	}

	arrivals := stats.NewPoissonProcess(cfg.MeanArrivalGap)
	nextAdd := arrivals.NextGap(rng)
	s.Events = make([]Event, 0, cfg.Updates)
	for len(s.Events) < cfg.Updates {
		if h.Len() == 0 || nextAdd < h[0].Time {
			v := newEntry()
			ev := Event{Time: nextAdd, Kind: EventAdd, Entry: v}
			s.Events = append(s.Events, ev)
			heap.Push(&h, Event{Time: nextAdd + cfg.Lifetime.Sample(rng), Kind: EventDelete, Entry: v})
			nextAdd += arrivals.NextGap(rng)
			continue
		}
		s.Events = append(s.Events, heap.Pop(&h).(Event))
	}
	return s, nil
}

// Apply consumes one update event.
type Apply func(Event) error

// Observe is called once per inter-event interval [from, to) during a
// timed replay; system state is constant on the interval, so a
// time-weighted measure accumulates duration·indicator here.
type Observe func(from, to float64) error

// Replay feeds every event to apply in time order.
func Replay(events []Event, apply Apply) error {
	for _, ev := range events {
		if err := apply(ev); err != nil {
			return fmt.Errorf("sim: apply %s(%s) at t=%.3f: %w", ev.Kind, ev.Entry, ev.Time, err)
		}
	}
	return nil
}

// ReplayTimed feeds events to apply and invokes observe for each
// interval between consecutive events (and the interval from time zero
// to the first event), enabling time-weighted steady-state measures.
func ReplayTimed(events []Event, apply Apply, observe Observe) error {
	prev := 0.0
	for _, ev := range events {
		if observe != nil && ev.Time > prev {
			if err := observe(prev, ev.Time); err != nil {
				return fmt.Errorf("sim: observe [%.3f,%.3f): %w", prev, ev.Time, err)
			}
		}
		if err := apply(ev); err != nil {
			return fmt.Errorf("sim: apply %s(%s) at t=%.3f: %w", ev.Kind, ev.Entry, ev.Time, err)
		}
		if ev.Time > prev {
			prev = ev.Time
		}
	}
	return nil
}

// Population replays the stream's population arithmetic only (no
// service), returning the entry count after every event — a cheap way
// for tests to verify the generator holds its steady state.
func (s Stream) Population() []int {
	count := len(s.Initial)
	out := make([]int, len(s.Events))
	for i, ev := range s.Events {
		switch ev.Kind {
		case EventAdd:
			count++
		case EventDelete:
			count--
		}
		out[i] = count
	}
	return out
}
