package topo

import (
	"reflect"
	"testing"
	"time"
)

func TestUniformAssignsRoundRobin(t *testing.T) {
	tp, err := Uniform(2, 2, 2, 24)
	if err != nil {
		t.Fatal(err)
	}
	if tp.N() != 24 || tp.NumRacks() != 8 {
		t.Fatalf("got n=%d racks=%d, want 24/8", tp.N(), tp.NumRacks())
	}
	// Server i lives in rack i mod 8; servers 0 and 8 share a rack.
	if tp.ZoneOf(0) != tp.ZoneOf(8) || tp.ZoneOf(0) == tp.ZoneOf(1) {
		t.Fatalf("round-robin assignment broken: %q %q %q", tp.ZoneOf(0), tp.ZoneOf(8), tp.ZoneOf(1))
	}
	if got := tp.Dist(0, 8); got != DistSameRack {
		t.Fatalf("Dist(0,8)=%d, want same rack", got)
	}
	if got := tp.Dist(0, 0); got != DistSameRack {
		t.Fatalf("Dist(0,0)=%d, want same rack", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	tp, err := Parse("2x2x2", 16)
	if err != nil {
		t.Fatal(err)
	}
	tp2, err := Parse(tp.Spec(), 16)
	if err != nil {
		t.Fatalf("re-parse of Spec %q: %v", tp.Spec(), err)
	}
	for i := 0; i < 16; i++ {
		if tp.ZoneOf(i) != tp2.ZoneOf(i) {
			t.Fatalf("server %d zone %q != %q after round trip", i, tp.ZoneOf(i), tp2.ZoneOf(i))
		}
	}
}

func TestParseExplicit(t *testing.T) {
	tp, err := Parse("r0/d0/k0=0,2;r1/d0/k0=1,3", 4)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Dist(0, 2) != DistSameRack || tp.Dist(0, 1) != DistCrossRegion {
		t.Fatalf("distances wrong: %d %d", tp.Dist(0, 2), tp.Dist(0, 1))
	}
	if got := tp.ZoneMembers("r1"); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("ZoneMembers(r1)=%v", got)
	}
	for _, bad := range []string{
		"r0/d0/k0=0,0;r1/d0/k0=1,2,3", // duplicate
		"r0/d0/k0=0,1,2",              // server 3 unassigned
		"r0/d0=0,1,2,3",               // not a rack path
		"r0/d0/k0=0,1,2,9",            // out of range
	} {
		if _, err := Parse(bad, 4); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", bad)
		}
	}
}

func TestDistanceLadder(t *testing.T) {
	tp, err := Parse("r0/d0/k0=0;r0/d0/k1=1;r0/d1/k0=2;r1/d0/k0=3", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{DistSameRack, DistSameDC, DistSameRegion, DistCrossRegion}
	for b, w := range want {
		if got := tp.Dist(0, b); got != w {
			t.Errorf("Dist(0,%d)=%d, want %d", b, got, w)
		}
	}
	// Client-zone distances, including partial paths.
	if got := tp.DistZone("r0/d0/k0", 0); got != DistSameRack {
		t.Errorf("DistZone(rack,0)=%d", got)
	}
	if got := tp.DistZone("r0", 2); got != DistSameRegion {
		t.Errorf("DistZone(region,2)=%d", got)
	}
	if got := tp.DistZone("r0/d0", 3); got != DistCrossRegion {
		t.Errorf("DistZone(r0/d0,3)=%d", got)
	}
}

func TestZonesAndMembers(t *testing.T) {
	tp, err := Uniform(2, 2, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tp.Zones(1)); got != 2 {
		t.Fatalf("Zones(1)=%d, want 2 regions", got)
	}
	if got := len(tp.Zones(2)); got != 4 {
		t.Fatalf("Zones(2)=%d, want 4 DCs", got)
	}
	// Every server is in exactly one DC.
	total := 0
	for _, z := range tp.Zones(2) {
		total += len(tp.ZoneMembers(z))
	}
	if total != 8 {
		t.Fatalf("DC membership covers %d servers, want 8", total)
	}
}

func TestSpreadAssignSpansZones(t *testing.T) {
	tp, err := Uniform(2, 2, 2, 24)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range []int{2, 3, 5} {
		for i := 0; i < 200; i++ {
			v := "entry" + string(rune('a'+i%26)) + string(rune('0'+i%10))
			homes := tp.SpreadAssign(v, y, 42)
			if len(homes) != y {
				t.Fatalf("SpreadAssign(%q, y=%d) returned %d homes", v, y, len(homes))
			}
			seen := map[int]bool{}
			for _, h := range homes {
				if seen[h] {
					t.Fatalf("SpreadAssign(%q) duplicated server %d", v, h)
				}
				seen[h] = true
			}
			// The guarantee the zone-bench availability rides on: with
			// >= 2 regions and y >= 2, no single zone at any depth holds
			// every copy.
			for depth := 1; depth <= 3; depth++ {
				if share := tp.MaxZoneShare(homes, depth); share >= len(homes) {
					t.Fatalf("SpreadAssign(%q, y=%d): all %d copies in one depth-%d zone", v, y, len(homes), depth)
				}
			}
		}
	}
}

func TestSpreadAssignDeterministic(t *testing.T) {
	tp, _ := Uniform(2, 2, 2, 16)
	a := tp.SpreadAssign("v17", 3, 7)
	b := tp.SpreadAssign("v17", 3, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("SpreadAssign not deterministic: %v vs %v", a, b)
	}
	c := tp.SpreadAssign("v17", 3, 8)
	if reflect.DeepEqual(a, c) {
		t.Log("different seeds gave the same assignment (possible, but suspicious for this case)")
	}
}

func TestGrowCompact(t *testing.T) {
	tp, err := Uniform(2, 1, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	tp.Grow(2)
	if tp.N() != 6 {
		t.Fatalf("N=%d after Grow(2), want 6", tp.N())
	}
	// Growth balances: 6 servers over 2 racks -> 3 each.
	for _, z := range tp.Zones(3) {
		if got := len(tp.ZoneMembers(z)); got != 3 {
			t.Fatalf("rack %s has %d members after grow, want 3", z, got)
		}
	}
	zoneOf5 := tp.ZoneOf(5)
	tp.Compact(0)
	if tp.N() != 5 {
		t.Fatalf("N=%d after Compact, want 5", tp.N())
	}
	// Higher ids shifted down: old server 5 is now 4, same zone.
	if tp.ZoneOf(4) != zoneOf5 {
		t.Fatalf("compaction broke renumbering: %q != %q", tp.ZoneOf(4), zoneOf5)
	}
}

func TestProfile(t *testing.T) {
	tp, _ := Uniform(1, 1, 1, 2)
	if lp := tp.Link(DistCrossRegion); lp.Base != 0 {
		t.Fatalf("zero profile should inject nothing, got %v", lp)
	}
	tp.SetProfile(DefaultProfile())
	if lp := tp.Link(DistCrossRegion); lp.Base != 30*time.Millisecond {
		t.Fatalf("Link(cross-region)=%v", lp)
	}
	if lp := tp.Link(99); lp != (LinkProfile{}) {
		t.Fatalf("out-of-range tier should be zero, got %v", lp)
	}
}
