// Package topo models the latency-tiered failure-domain tree a real
// deployment runs in: servers live in racks, racks in data centers,
// data centers in regions. The INRIA replica-placement papers
// (PAPERS.md) show that placement in such a tree changes both lookup
// cost and availability; this package is the shared substrate the
// chaos layer (zone-correlated latency, whole-zone partitions), the
// zone-spread placement mode, and the zone-aware selector consume.
//
// A Topology is an assignment of server ids to leaf zones (racks)
// plus a per-tier link latency profile. Zones are named by paths:
// "r0" is a region, "r0/d1" a data center, "r0/d1/k0" a rack; any
// prefix of a rack path names the enclosing zone, so one API serves
// partitions and membership queries at every level.
//
// Everything here is deterministic and RNG-free: zone assignment,
// distances, and the spread placement assignment are pure functions
// of the topology and (for SpreadAssign) a hash of the entry, so
// enabling a topology never perturbs a run's seeded random streams.
package topo

import (
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Distance tiers between two servers, used to index a Profile.
const (
	DistSameRack    = 0 // same rack (possibly same machine)
	DistSameDC      = 1 // same data center, different rack
	DistSameRegion  = 2 // same region, different data center
	DistCrossRegion = 3 // different regions
)

// NumDistances is the number of distance tiers.
const NumDistances = 4

// LinkProfile is the latency a call pays to traverse one distance
// tier: a fixed base plus uniform jitter in [0, Jitter).
type LinkProfile struct {
	Base   time.Duration
	Jitter time.Duration
}

// Profile maps each distance tier to its link latency. The zero value
// injects nothing (zones still partition and count hops, but cost no
// simulated time).
type Profile [NumDistances]LinkProfile

// DefaultProfile is a conventional datacenter latency ladder: free
// within a rack, 0.2ms across racks, 1ms across DCs, 30ms across
// regions. Benchmarks that only count cross-zone hops use the zero
// Profile instead so wall-clock stays bounded.
func DefaultProfile() Profile {
	return Profile{
		DistSameRack:    {},
		DistSameDC:      {Base: 200 * time.Microsecond},
		DistSameRegion:  {Base: time.Millisecond},
		DistCrossRegion: {Base: 30 * time.Millisecond},
	}
}

// rack is one leaf zone.
type rack struct {
	region, dc, name string
}

func (r rack) path() string { return r.region + "/" + r.dc + "/" + r.name }

// Topology is a concurrency-safe zone tree plus server assignment.
// Reads (distances, membership, spread assignment) take a shared
// lock; Grow/Compact mutate it in step with cluster membership.
type Topology struct {
	mu      sync.RWMutex
	racks   []rack
	assign  []int   // server id -> rack index
	members [][]int // rack index -> server ids, ascending
	// spreadOrder interleaves rack indices region-first, then DC, then
	// rack, so consecutive entries differ in the widest failure domain
	// available — the order SpreadAssign walks.
	spreadOrder []int
	profile     Profile
}

// Uniform builds a balanced tree of regions x dcsPerRegion x
// racksPerDC racks and assigns n servers round-robin across racks
// (server i lives in rack i mod numRacks). Round-robin numbering is
// deliberate: it makes consecutive server ids land in different
// failure domains, so schemes that place on consecutive ids (Round-y
// windows) are zone-diverse without any protocol change.
func Uniform(regions, dcsPerRegion, racksPerDC, n int) (*Topology, error) {
	if regions <= 0 || dcsPerRegion <= 0 || racksPerDC <= 0 {
		return nil, fmt.Errorf("topo: tree dimensions must be positive, got %dx%dx%d", regions, dcsPerRegion, racksPerDC)
	}
	if n <= 0 {
		return nil, fmt.Errorf("topo: need n > 0 servers, got %d", n)
	}
	t := &Topology{profile: Profile{}}
	for r := 0; r < regions; r++ {
		for d := 0; d < dcsPerRegion; d++ {
			for k := 0; k < racksPerDC; k++ {
				t.racks = append(t.racks, rack{
					region: "r" + strconv.Itoa(r),
					dc:     "d" + strconv.Itoa(d),
					name:   "k" + strconv.Itoa(k),
				})
			}
		}
	}
	if len(t.racks) > n {
		return nil, fmt.Errorf("topo: %d racks but only %d servers (every rack needs a member)", len(t.racks), n)
	}
	t.assign = make([]int, n)
	for i := range t.assign {
		t.assign[i] = i % len(t.racks)
	}
	t.rebuild()
	return t, nil
}

// Parse builds a topology from a compact spec for n servers. Two
// forms are accepted:
//
//   - "RxDxK" (e.g. "2x2x2"): a Uniform tree of R regions, D data
//     centers per region, K racks per DC, servers assigned
//     round-robin;
//   - an explicit assignment "r0/d0/k0=0,1,2;r0/d1/k0=3,4,5": every
//     server id in [0, n) must appear exactly once.
//
// A spec starting with "@" names a file holding the spec (either
// form, whitespace ignored), the shape plsd's -topology flag takes.
func Parse(spec string, n int) (*Topology, error) {
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, fmt.Errorf("topo: read spec file: %w", err)
		}
		spec = strings.Join(strings.Fields(string(data)), "")
	}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("topo: empty spec")
	}
	if !strings.Contains(spec, "=") {
		dims := strings.Split(spec, "x")
		if len(dims) != 3 {
			return nil, fmt.Errorf("topo: spec %q is neither RxDxK nor an explicit assignment", spec)
		}
		var v [3]int
		for i, d := range dims {
			x, err := strconv.Atoi(d)
			if err != nil {
				return nil, fmt.Errorf("topo: bad dimension %q in spec %q", d, spec)
			}
			v[i] = x
		}
		return Uniform(v[0], v[1], v[2], n)
	}
	t := &Topology{assign: make([]int, n), profile: Profile{}}
	for i := range t.assign {
		t.assign[i] = -1
	}
	rackIdx := make(map[string]int)
	for _, clause := range strings.Split(spec, ";") {
		if clause == "" {
			continue
		}
		eq := strings.SplitN(clause, "=", 2)
		if len(eq) != 2 {
			return nil, fmt.Errorf("topo: clause %q wants rack=ids", clause)
		}
		parts := strings.Split(eq[0], "/")
		if len(parts) != 3 {
			return nil, fmt.Errorf("topo: zone %q must be region/dc/rack", eq[0])
		}
		for _, p := range parts {
			if p == "" {
				return nil, fmt.Errorf("topo: zone %q has an empty component", eq[0])
			}
		}
		ri, ok := rackIdx[eq[0]]
		if !ok {
			ri = len(t.racks)
			rackIdx[eq[0]] = ri
			t.racks = append(t.racks, rack{region: parts[0], dc: parts[1], name: parts[2]})
		}
		for _, idStr := range strings.Split(eq[1], ",") {
			if idStr == "" {
				continue
			}
			id, err := strconv.Atoi(idStr)
			if err != nil {
				return nil, fmt.Errorf("topo: bad server id %q in clause %q", idStr, clause)
			}
			if id < 0 || id >= n {
				return nil, fmt.Errorf("topo: server id %d outside [0,%d)", id, n)
			}
			if t.assign[id] != -1 {
				return nil, fmt.Errorf("topo: server %d assigned twice", id)
			}
			t.assign[id] = ri
		}
	}
	for id, ri := range t.assign {
		if ri == -1 {
			return nil, fmt.Errorf("topo: server %d has no zone assignment", id)
		}
	}
	t.rebuild()
	return t, nil
}

// rebuild recomputes the per-rack member lists and the spread walk
// order. Callers hold the write lock (or own the only reference).
func (t *Topology) rebuild() {
	t.members = make([][]int, len(t.racks))
	for id, ri := range t.assign {
		t.members[ri] = append(t.members[ri], id)
	}
	// Group racks by region, inside each region by DC, preserving rack
	// declaration order, then interleave bottom-up so the walk order
	// alternates regions first, DCs second, racks last.
	regionOrder := []string{}
	byRegion := map[string][]int{}
	for ri, rk := range t.racks {
		if _, ok := byRegion[rk.region]; !ok {
			regionOrder = append(regionOrder, rk.region)
		}
		byRegion[rk.region] = append(byRegion[rk.region], ri)
	}
	regionLists := make([][]int, 0, len(regionOrder))
	for _, reg := range regionOrder {
		dcOrder := []string{}
		byDC := map[string][]int{}
		for _, ri := range byRegion[reg] {
			dc := t.racks[ri].dc
			if _, ok := byDC[dc]; !ok {
				dcOrder = append(dcOrder, dc)
			}
			byDC[dc] = append(byDC[dc], ri)
		}
		dcLists := make([][]int, 0, len(dcOrder))
		for _, dc := range dcOrder {
			dcLists = append(dcLists, byDC[dc])
		}
		regionLists = append(regionLists, interleave(dcLists))
	}
	t.spreadOrder = interleave(regionLists)
}

// interleave merges groups by taking index 0 of each group, then
// index 1, and so on — the round-robin that maximizes domain
// diversity between consecutive output entries.
func interleave(groups [][]int) []int {
	var out []int
	for i := 0; ; i++ {
		took := false
		for _, g := range groups {
			if i < len(g) {
				out = append(out, g[i])
				took = true
			}
		}
		if !took {
			return out
		}
	}
}

// N returns the number of servers assigned.
func (t *Topology) N() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.assign)
}

// NumRacks returns the number of leaf zones.
func (t *Topology) NumRacks() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.racks)
}

// SetProfile installs the per-tier latency profile.
func (t *Topology) SetProfile(p Profile) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.profile = p
}

// Link returns the latency profile for one distance tier.
func (t *Topology) Link(dist int) LinkProfile {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if dist < 0 || dist >= NumDistances {
		return LinkProfile{}
	}
	return t.profile[dist]
}

// ZoneOf returns the rack path of a server, or "" if the id is
// outside the assignment (a joiner the topology has not grown to
// cover yet).
func (t *Topology) ZoneOf(server int) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if server < 0 || server >= len(t.assign) {
		return ""
	}
	return t.racks[t.assign[server]].path()
}

// Dist returns the distance tier between two servers. Unassigned ids
// are treated as maximally distant.
func (t *Topology) Dist(a, b int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if a < 0 || a >= len(t.assign) || b < 0 || b >= len(t.assign) {
		return DistCrossRegion
	}
	return distRacks(t.racks[t.assign[a]], t.racks[t.assign[b]])
}

func distRacks(x, y rack) int {
	switch {
	case x == y:
		return DistSameRack
	case x.region == y.region && x.dc == y.dc:
		return DistSameDC
	case x.region == y.region:
		return DistSameRegion
	default:
		return DistCrossRegion
	}
}

// DistZone returns the distance tier from a zone path (a region, DC,
// or rack — the caller's location, e.g. a client's) to a server. A
// partial path is as close as it can be proven: a client "in r0" is
// DistSameRegion from every r0 server.
func (t *Topology) DistZone(path string, server int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if server < 0 || server >= len(t.assign) {
		return DistCrossRegion
	}
	parts := strings.Split(path, "/")
	rk := t.racks[t.assign[server]]
	if len(parts) == 0 || parts[0] != rk.region {
		return DistCrossRegion
	}
	if len(parts) == 1 {
		return DistSameRegion
	}
	if parts[1] != rk.dc {
		return DistSameRegion
	}
	if len(parts) == 2 {
		return DistSameDC
	}
	if parts[2] != rk.name {
		return DistSameDC
	}
	return DistSameRack
}

// InZone reports whether a server lies inside the zone named by path
// (a rack path or any prefix of one).
func (t *Topology) InZone(server int, path string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.inZoneLocked(server, path)
}

func (t *Topology) inZoneLocked(server int, path string) bool {
	if server < 0 || server >= len(t.assign) {
		return false
	}
	rk := t.racks[t.assign[server]]
	parts := strings.Split(path, "/")
	switch len(parts) {
	case 1:
		return parts[0] == rk.region
	case 2:
		return parts[0] == rk.region && parts[1] == rk.dc
	case 3:
		return parts[0] == rk.region && parts[1] == rk.dc && parts[2] == rk.name
	default:
		return false
	}
}

// ZoneMembers returns the servers inside a zone (region, DC, or rack
// path), ascending.
func (t *Topology) ZoneMembers(path string) []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []int
	for id := range t.assign {
		if t.inZoneLocked(id, path) {
			out = append(out, id)
		}
	}
	return out
}

// Zones lists the distinct zone paths at one depth: 1 = regions,
// 2 = data centers, 3 = racks. Paths come out in first-seen
// (declaration) order.
func (t *Topology) Zones(depth int) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	for _, rk := range t.racks {
		var p string
		switch depth {
		case 1:
			p = rk.region
		case 2:
			p = rk.region + "/" + rk.dc
		default:
			p = rk.path()
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Grow assigns k new servers (taking the next ids) to the
// least-populated racks, lowest rack index first — deterministic, so
// every member of a cluster that grows its topology in step computes
// the same assignment.
func (t *Topology) Grow(k int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < k; i++ {
		best, bestLen := 0, -1
		for ri := range t.racks {
			if bestLen == -1 || len(t.members[ri]) < bestLen {
				best, bestLen = ri, len(t.members[ri])
			}
		}
		t.assign = append(t.assign, best)
		t.rebuild()
	}
}

// Compact removes one server's assignment and shifts higher ids down
// by one, mirroring transport slot compaction after a drain.
func (t *Topology) Compact(server int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if server < 0 || server >= len(t.assign) {
		return
	}
	t.assign = append(t.assign[:server], t.assign[server+1:]...)
	t.rebuild()
}

// SpreadAssign picks y distinct servers for entry v, walking racks in
// the interleaved spread order so consecutive copies land in the
// widest distinct failure domains available: with at least two
// top-level zones and y >= 2, no single zone (rack, DC, or region)
// holds every copy. The choice is a pure function of (v, y, seed,
// topology) — no RNG — so it can serve as the Hash-y/MultiProbe-y
// home assignment under the zone-spread placement mode and be
// recomputed identically by placement, repair, and the invariant
// checker.
func (t *Topology) SpreadAssign(v string, y int, seed uint64) []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := len(t.assign)
	if y <= 0 || n == 0 {
		return nil
	}
	if y > n {
		y = n
	}
	h := fnv.New64a()
	h.Write([]byte(v))
	base := h.Sum64() ^ seed
	z := len(t.spreadOrder)
	start := int(mix64(base+0x9e3779b97f4a7c15) % uint64(z))
	chosen := make([]int, 0, y)
	taken := make(map[int]bool, y)
	for c := 0; c < y; c++ {
		s := t.pickLocked(base, start+c, c, taken)
		if s < 0 {
			break
		}
		taken[s] = true
		chosen = append(chosen, s)
	}
	return chosen
}

// pickLocked finds the first untaken server starting at spread-order
// rack position rackAt, probing within each rack from a hash-derived
// offset before falling to the next rack.
func (t *Topology) pickLocked(base uint64, rackAt, c int, taken map[int]bool) int {
	z := len(t.spreadOrder)
	for off := 0; off < z; off++ {
		mem := t.members[t.spreadOrder[(rackAt+off)%z]]
		if len(mem) == 0 {
			continue
		}
		pick := int(mix64(base+uint64(c+2)*0x9e3779b97f4a7c15) % uint64(len(mem)))
		for j := 0; j < len(mem); j++ {
			if s := mem[(pick+j)%len(mem)]; !taken[s] {
				return s
			}
		}
	}
	return -1
}

// MaxZoneShare returns, for a list of servers (e.g. one entry's
// homes), the largest number that share a single zone at the given
// depth (1 = region, 2 = DC, 3 = rack) — the copies a single
// zone partition can take out at once.
func (t *Topology) MaxZoneShare(servers []int, depth int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	counts := map[string]int{}
	best := 0
	for _, s := range servers {
		if s < 0 || s >= len(t.assign) {
			continue
		}
		rk := t.racks[t.assign[s]]
		var p string
		switch depth {
		case 1:
			p = rk.region
		case 2:
			p = rk.region + "/" + rk.dc
		default:
			p = rk.path()
		}
		counts[p]++
		if counts[p] > best {
			best = counts[p]
		}
	}
	return best
}

// String summarizes the tree, e.g. "2 regions / 4 DCs / 8 racks, 24
// servers".
func (t *Topology) String() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	regions := map[string]bool{}
	dcs := map[string]bool{}
	for _, rk := range t.racks {
		regions[rk.region] = true
		dcs[rk.region+"/"+rk.dc] = true
	}
	return fmt.Sprintf("%d regions / %d DCs / %d racks, %d servers",
		len(regions), len(dcs), len(t.racks), len(t.assign))
}

// Spec serializes the topology as an explicit-assignment Parse spec,
// with racks in declaration order — the cluster-wide config every
// member must agree on (see DESIGN.md §14).
func (t *Topology) Spec() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	clauses := make([]string, 0, len(t.racks))
	for ri, rk := range t.racks {
		if len(t.members[ri]) == 0 {
			continue
		}
		ids := make([]string, len(t.members[ri]))
		for i, id := range t.members[ri] {
			ids[i] = strconv.Itoa(id)
		}
		clauses = append(clauses, rk.path()+"="+strings.Join(ids, ","))
	}
	sort.Strings(clauses)
	return strings.Join(clauses, ";")
}

// Within reports whether zone path z lies inside (or equals) the zone
// named by ancestor. It is a pure path comparison — no topology needed
// — so callers can relate a client's zone path to a partitioned zone.
func Within(z, ancestor string) bool {
	return z == ancestor || strings.HasPrefix(z, ancestor+"/")
}

// mix64 is the SplitMix64 finalizer, the same bit mixer the Hash-y
// assignment uses, so spread picks are as uniform as the base scheme.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
