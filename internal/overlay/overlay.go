// Package overlay implements the Sec. 7.2 variation: servers with
// limited reachability. Participants form an application-level overlay
// network (as in Gnutella-style systems); a client can only reach
// lookup servers within a bounded hop count d.
//
// The package provides the overlay graph substrate (deterministic
// generators, BFS hop distances), the placement problem the paper
// states — "making sure the data is placed on a set of servers such
// that for each client i there exists a server s where the distance
// between i and s is bounded by a hop count d" — solved with a greedy
// dominating-set heuristic, and a transport wrapper that enforces the
// hop limit so the ordinary strategy drivers run unmodified under
// restricted reachability.
package overlay

import (
	"fmt"

	"repro/internal/stats"
)

// Graph is an undirected overlay over participants 0..M-1.
type Graph struct {
	adj [][]int
}

// NewGraph returns an edgeless graph over m participants.
func NewGraph(m int) *Graph {
	if m <= 0 {
		panic("overlay: NewGraph requires m > 0")
	}
	return &Graph{adj: make([][]int, m)}
}

// Size returns the number of participants.
func (g *Graph) Size() int { return len(g.adj) }

// AddEdge links a and b (idempotent; self-loops ignored).
func (g *Graph) AddEdge(a, b int) {
	if a == b || a < 0 || b < 0 || a >= len(g.adj) || b >= len(g.adj) {
		return
	}
	for _, x := range g.adj[a] {
		if x == b {
			return
		}
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
}

// Neighbors returns the adjacency list of a participant.
func (g *Graph) Neighbors(p int) []int {
	out := make([]int, len(g.adj[p]))
	copy(out, g.adj[p])
	return out
}

// NewRing builds a connected ring of m participants with `shortcuts`
// additional random chords — a small-world-style overlay. It is
// deterministic given the RNG.
func NewRing(m, shortcuts int, rng *stats.RNG) *Graph {
	g := NewGraph(m)
	for i := 0; i < m; i++ {
		g.AddEdge(i, (i+1)%m)
	}
	for s := 0; s < shortcuts; s++ {
		g.AddEdge(rng.IntN(m), rng.IntN(m))
	}
	return g
}

// NewRandom builds a connected random overlay: a random spanning tree
// (guaranteeing connectivity) plus extra random edges with probability
// p per pair, approximated by m·p·(m-1)/2 … bounded extra edges.
func NewRandom(m int, extraEdges int, rng *stats.RNG) *Graph {
	g := NewGraph(m)
	// Random spanning tree: connect each node to a random earlier one.
	perm := rng.Perm(m)
	for i := 1; i < m; i++ {
		g.AddEdge(perm[i], perm[rng.IntN(i)])
	}
	for e := 0; e < extraEdges; e++ {
		g.AddEdge(rng.IntN(m), rng.IntN(m))
	}
	return g
}

// Hops returns the BFS hop distance from `from` to every participant
// (-1 if unreachable).
func (g *Graph) Hops(from int) []int {
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[from] = 0
	queue := []int{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range g.adj[cur] {
			if dist[next] == -1 {
				dist[next] = dist[cur] + 1
				queue = append(queue, next)
			}
		}
	}
	return dist
}

// WithinHops returns the participants within d hops of `from`
// (including `from` itself).
func (g *Graph) WithinHops(from, d int) []int {
	dist := g.Hops(from)
	var out []int
	for p, h := range dist {
		if h >= 0 && h <= d {
			out = append(out, p)
		}
	}
	return out
}

// Covered reports, for every participant, whether some server in
// `servers` lies within d hops.
func (g *Graph) Covered(servers []int, d int) []bool {
	out := make([]bool, len(g.adj))
	for _, s := range servers {
		if s < 0 || s >= len(g.adj) {
			continue
		}
		for _, p := range g.WithinHops(s, d) {
			out[p] = true
		}
	}
	return out
}

// Uncovered returns the participants with no server within d hops.
func (g *Graph) Uncovered(servers []int, d int) []int {
	covered := g.Covered(servers, d)
	var out []int
	for p, ok := range covered {
		if !ok {
			out = append(out, p)
		}
	}
	return out
}

// GreedyPlacement solves the Sec. 7.2 placement problem heuristically:
// choose a small set of participants to host lookup servers such that
// every participant has a server within d hops. This is minimum
// dominating set (NP-hard), so it greedily picks the participant
// covering the most still-uncovered participants. The result is
// deterministic.
func GreedyPlacement(g *Graph, d int) []int {
	m := g.Size()
	if d < 0 {
		d = 0
	}
	covered := make([]bool, m)
	remaining := m
	// Precompute the d-ball of every participant.
	balls := make([][]int, m)
	for p := 0; p < m; p++ {
		balls[p] = g.WithinHops(p, d)
	}
	var servers []int
	for remaining > 0 {
		best, bestGain := -1, -1
		for p := 0; p < m; p++ {
			gain := 0
			for _, q := range balls[p] {
				if !covered[q] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = p, gain
			}
		}
		if bestGain <= 0 {
			break // disconnected leftovers (cannot happen on connected graphs)
		}
		servers = append(servers, best)
		for _, q := range balls[best] {
			if !covered[q] {
				covered[q] = true
				remaining--
			}
		}
	}
	return servers
}

// MeanServerDistance returns the average hop distance from each
// participant to its nearest server — the client-side lookup latency
// proxy in the Sec. 7.2 tradeoff.
func MeanServerDistance(g *Graph, servers []int) (float64, error) {
	if len(servers) == 0 {
		return 0, fmt.Errorf("overlay: no servers")
	}
	m := g.Size()
	best := make([]int, m)
	for i := range best {
		best[i] = -1
	}
	for _, s := range servers {
		for p, h := range g.Hops(s) {
			if h >= 0 && (best[p] == -1 || h < best[p]) {
				best[p] = h
			}
		}
	}
	sum := 0
	for p, h := range best {
		if h < 0 {
			return 0, fmt.Errorf("overlay: participant %d cannot reach any server", p)
		}
		sum += h
	}
	return float64(sum) / float64(m), nil
}
