package overlay

import (
	"context"
	"fmt"

	"repro/internal/transport"
	"repro/internal/wire"
)

// RestrictedCaller enforces a client's hop-limited view of the
// cluster: calls to servers beyond the hop limit fail with
// transport.ErrServerDown, so the unmodified strategy drivers fall
// over to reachable servers exactly as they do under real failures.
type RestrictedCaller struct {
	inner     transport.Caller
	reachable []bool
}

var _ transport.Caller = (*RestrictedCaller)(nil)

// Restrict builds the hop-limited view of a client at overlay
// participant `client`. serverNodes[i] is the overlay participant
// hosting lookup server i of the inner caller.
func Restrict(inner transport.Caller, g *Graph, client int, serverNodes []int, d int) (*RestrictedCaller, error) {
	if len(serverNodes) != inner.NumServers() {
		return nil, fmt.Errorf("overlay: %d server nodes for %d servers", len(serverNodes), inner.NumServers())
	}
	if client < 0 || client >= g.Size() {
		return nil, fmt.Errorf("overlay: client %d outside graph of %d participants", client, g.Size())
	}
	dist := g.Hops(client)
	reachable := make([]bool, len(serverNodes))
	for i, p := range serverNodes {
		if p < 0 || p >= g.Size() {
			return nil, fmt.Errorf("overlay: server %d hosted at invalid participant %d", i, p)
		}
		reachable[i] = dist[p] >= 0 && dist[p] <= d
	}
	return &RestrictedCaller{inner: inner, reachable: reachable}, nil
}

// NumServers returns the underlying cluster size (unreachable servers
// still exist; they just cannot be contacted).
func (r *RestrictedCaller) NumServers() int { return r.inner.NumServers() }

// Reachable reports whether the client can contact server i.
func (r *RestrictedCaller) Reachable(i int) bool {
	return i >= 0 && i < len(r.reachable) && r.reachable[i]
}

// ReachableCount returns how many servers the client can contact.
func (r *RestrictedCaller) ReachableCount() int {
	c := 0
	for _, ok := range r.reachable {
		if ok {
			c++
		}
	}
	return c
}

// Call forwards to the inner transport if the server is within the
// client's hop limit.
func (r *RestrictedCaller) Call(ctx context.Context, server int, msg wire.Message) (wire.Message, error) {
	if server < 0 || server >= len(r.reachable) {
		return nil, fmt.Errorf("overlay: server %d out of range", server)
	}
	if !r.reachable[server] {
		return nil, fmt.Errorf("%w: server %d beyond hop limit", transport.ErrServerDown, server)
	}
	return r.inner.Call(ctx, server, msg)
}
