package overlay_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/entry"
	"repro/internal/overlay"
	"repro/internal/stats"
	"repro/internal/strategy"
	"repro/internal/transport"
	"repro/internal/wire"
)

func TestGraphBasics(t *testing.T) {
	g := overlay.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // idempotent
	g.AddEdge(2, 2) // self-loop ignored
	g.AddEdge(-1, 3)
	if got := len(g.Neighbors(1)); got != 2 {
		t.Fatalf("node 1 has %d neighbors, want 2", got)
	}
	dist := g.Hops(0)
	want := []int{0, 1, 2, -1}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("Hops(0) = %v, want %v", dist, want)
		}
	}
	within := g.WithinHops(0, 1)
	if len(within) != 2 {
		t.Fatalf("WithinHops(0,1) = %v, want [0 1]", within)
	}
}

func TestRingConnectivityAndDiameter(t *testing.T) {
	rng := stats.NewRNG(1)
	g := overlay.NewRing(20, 0, rng)
	dist := g.Hops(0)
	for p, h := range dist {
		if h < 0 {
			t.Fatalf("ring disconnected at %d", p)
		}
		// Ring distance is min(p, 20-p).
		want := p
		if 20-p < want {
			want = 20 - p
		}
		if h != want {
			t.Fatalf("Hops(0)[%d] = %d, want %d", p, h, want)
		}
	}
	// Shortcuts only shrink distances.
	g2 := overlay.NewRing(20, 15, stats.NewRNG(2))
	d2 := g2.Hops(0)
	for p := range d2 {
		if d2[p] > dist[p] {
			t.Fatalf("shortcut increased distance at %d: %d > %d", p, d2[p], dist[p])
		}
	}
}

func TestRandomGraphConnected(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := overlay.NewRandom(50, 10, stats.NewRNG(seed))
		for p, h := range g.Hops(0) {
			if h < 0 {
				t.Fatalf("seed %d: participant %d unreachable", seed, p)
			}
		}
	}
}

func TestCoveredAndUncovered(t *testing.T) {
	g := overlay.NewRing(10, 0, stats.NewRNG(1))
	// One server at 0 with d=2 covers {8,9,0,1,2}.
	covered := g.Covered([]int{0}, 2)
	wantCovered := map[int]bool{8: true, 9: true, 0: true, 1: true, 2: true}
	for p, got := range covered {
		if got != wantCovered[p] {
			t.Fatalf("Covered[%d] = %v, want %v", p, got, wantCovered[p])
		}
	}
	un := g.Uncovered([]int{0}, 2)
	if len(un) != 5 {
		t.Fatalf("Uncovered = %v, want 5 participants", un)
	}
}

func TestGreedyPlacementCoversEveryone(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		g := overlay.NewRandom(60, 20, stats.NewRNG(seed))
		for _, d := range []int{1, 2, 3} {
			servers := overlay.GreedyPlacement(g, d)
			if len(servers) == 0 {
				t.Fatalf("no servers placed for d=%d", d)
			}
			if un := g.Uncovered(servers, d); len(un) != 0 {
				t.Fatalf("d=%d: %d uncovered participants %v", d, len(un), un)
			}
		}
		// Larger d needs no more servers than smaller d (greedy is a
		// heuristic, but on these graphs monotonicity holds broadly).
		s1 := len(overlay.GreedyPlacement(g, 1))
		s3 := len(overlay.GreedyPlacement(g, 3))
		if s3 > s1 {
			t.Fatalf("d=3 needed %d servers, d=1 needed %d", s3, s1)
		}
	}
}

func TestGreedyPlacementRingExact(t *testing.T) {
	// On a plain 12-ring with d=1, each server covers 3 nodes: the
	// greedy solution needs exactly 4 servers.
	g := overlay.NewRing(12, 0, stats.NewRNG(1))
	servers := overlay.GreedyPlacement(g, 1)
	if len(servers) != 4 {
		t.Fatalf("ring d=1 placement = %v (%d servers), want 4", servers, len(servers))
	}
}

func TestMeanServerDistance(t *testing.T) {
	g := overlay.NewRing(8, 0, stats.NewRNG(1))
	// Servers at 0 and 4: distances are 0,1,2,1,0,1,2,1 → mean 1.
	mean, err := overlay.MeanServerDistance(g, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if mean != 1 {
		t.Fatalf("mean distance = %v, want 1", mean)
	}
	if _, err := overlay.MeanServerDistance(g, nil); err == nil {
		t.Fatal("no servers accepted")
	}
}

func TestRestrictedCallerEnforcesHopLimit(t *testing.T) {
	// 10 participants on a ring; servers 0..3 hosted at participants
	// 0, 2, 5, 8. A client at participant 1 with d=1 reaches servers
	// at participants 0 and 2 only.
	rng := stats.NewRNG(3)
	g := overlay.NewRing(10, 0, rng.Split())
	cl := cluster.New(4, rng.Split())
	serverNodes := []int{0, 2, 5, 8}

	rc, err := overlay.Restrict(cl.Caller(), g, 1, serverNodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rc.NumServers() != 4 {
		t.Fatalf("NumServers = %d", rc.NumServers())
	}
	if rc.ReachableCount() != 2 || !rc.Reachable(0) || !rc.Reachable(1) || rc.Reachable(2) {
		t.Fatalf("reachability wrong: count=%d", rc.ReachableCount())
	}
	ctx := context.Background()
	if _, err := rc.Call(ctx, 0, wire.Ping{}); err != nil {
		t.Fatalf("reachable call failed: %v", err)
	}
	_, err = rc.Call(ctx, 2, wire.Ping{})
	if !errors.Is(err, transport.ErrServerDown) {
		t.Fatalf("unreachable call = %v, want ErrServerDown", err)
	}
}

func TestStrategyUnderRestrictedReachability(t *testing.T) {
	// Place via the full transport (the service provider side), then
	// look up through a hop-limited client: the driver must satisfy t
	// using only reachable servers.
	rng := stats.NewRNG(4)
	g := overlay.NewRing(12, 3, rng.Split())
	cl := cluster.New(6, rng.Split())
	serverNodes := []int{0, 2, 4, 6, 8, 10}

	drv := strategy.MustNew(wire.Config{Scheme: wire.RoundRobin, Y: 3}, rng.Split())
	ctx := context.Background()
	if err := drv.Place(ctx, cl.Caller(), "k", entry.Synthetic(30)); err != nil {
		t.Fatal(err)
	}

	rc, err := overlay.Restrict(cl.Caller(), g, 1, serverNodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rc.ReachableCount() == 0 || rc.ReachableCount() == 6 {
		t.Fatalf("want a strict subset reachable, got %d of 6", rc.ReachableCount())
	}
	res, err := drv.PartialLookup(ctx, rc, "k", 5)
	if err != nil {
		t.Fatalf("restricted lookup: %v", err)
	}
	if !res.Satisfied(5) {
		t.Fatalf("restricted lookup got %d entries", len(res.Entries))
	}
	if res.Contacted > rc.ReachableCount() {
		t.Fatalf("contacted %d > reachable %d", res.Contacted, rc.ReachableCount())
	}
}

func TestRestrictValidation(t *testing.T) {
	rng := stats.NewRNG(5)
	g := overlay.NewRing(5, 0, rng.Split())
	cl := cluster.New(2, rng.Split())
	if _, err := overlay.Restrict(cl.Caller(), g, 0, []int{0}, 1); err == nil {
		t.Fatal("mismatched server list accepted")
	}
	if _, err := overlay.Restrict(cl.Caller(), g, 9, []int{0, 1}, 1); err == nil {
		t.Fatal("out-of-graph client accepted")
	}
	if _, err := overlay.Restrict(cl.Caller(), g, 0, []int{0, 99}, 1); err == nil {
		t.Fatal("out-of-graph server host accepted")
	}
}
