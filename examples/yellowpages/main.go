// Yellowpages: the paper's second motivating workload — categories
// ("news", "music", ...) map to URLs of sites in that category. The
// catalog churns continuously (sites appear and die), which exercises
// the dynamic-update protocols of Sec. 5:
//
//   - high-churn categories run Fixed-x with a cushion (cheap updates,
//     selective broadcast, Sec. 5.2);
//   - static reference categories run Round-y (perfect fairness, full
//     coverage).
//
// The example replays a Poisson/exponential update stream (Sec. 6.1),
// reports the realized update overhead per strategy, verifies the
// cushion keeps the lookup failure time small, and injects failures.
//
//	go run ./examples/yellowpages
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

const (
	numServers = 10
	steady     = 100 // sites per category at steady state
	target     = 10  // users want ~10 sites per query
	cushion    = 4
	updates    = 10000
)

func main() {
	ctx := context.Background()
	rng := stats.NewRNG(7)

	cl := cluster.New(numServers, rng.Split())
	svc, err := core.NewService(cl.Caller(),
		core.WithSeed(3),
		core.WithClassifier(func(key string) (core.Config, bool) {
			if strings.HasPrefix(key, "churn/") {
				// x = t + b (Sec. 5.2).
				return core.Config{Scheme: core.Fixed, X: target + cushion}, true
			}
			return core.Config{Scheme: core.RoundRobin, Y: 2}, true
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Two categories with identical content and churn, managed by the
	// two strategies.
	lifetime, err := sim.DefaultLifetime("exp", 10, steady)
	if err != nil {
		log.Fatal(err)
	}
	stream, err := sim.Generate(rng.Split(), sim.StreamConfig{
		MeanArrivalGap: 10,
		SteadyState:    steady,
		Lifetime:       lifetime,
		Updates:        updates,
	})
	if err != nil {
		log.Fatal(err)
	}
	categories := []string{"churn/news", "stable/news"}
	for _, cat := range categories {
		urls := make([]core.Entry, len(stream.Initial))
		for i, v := range stream.Initial {
			urls[i] = core.Entry("http://" + string(v) + ".example.com")
		}
		if err := svc.Place(ctx, cat, urls); err != nil {
			log.Fatalf("place %s: %v", cat, err)
		}
	}
	cl.ResetMessages()

	// Replay the same churn through both categories, tracking the
	// fraction of time the Fixed-x category would fail a t=10 query.
	failTime, totalTime := 0.0, 0.0
	node0 := cl.Node(0)
	err = sim.ReplayTimed(stream.Events, func(ev sim.Event) error {
		url := core.Entry("http://" + string(ev.Entry) + ".example.com")
		for _, cat := range categories {
			var err error
			if ev.Kind == sim.EventAdd {
				err = svc.Add(ctx, cat, url)
			} else {
				err = svc.Delete(ctx, cat, url)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}, func(from, to float64) error {
		d := to - from
		totalTime += d
		if node0.LocalLen("churn/news") < target {
			failTime += d
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replayed %d updates through both categories\n", updates)
	fmt.Printf("  total server messages: %d (both strategies combined)\n", cl.Messages())
	fmt.Printf("  Fixed-%d thin time:     %.3f%% of execution (cushion b=%d)\n",
		target+cushion, 100*failTime/totalTime, cushion)
	fmt.Printf("  storage now: churn/news=%d entries, stable/news=%d entries\n",
		cl.TotalStorage("churn/news"), cl.TotalStorage("stable/news"))

	// Query both categories.
	for _, cat := range categories {
		res, err := svc.PartialLookup(ctx, cat, target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\npartial_lookup(%q, %d): %d URLs from %d server(s), e.g.:\n",
			cat, target, len(res.Entries), res.Contacted)
		for i, u := range res.Entries {
			if i == 3 {
				fmt.Println("    ...")
				break
			}
			fmt.Println("   ", u)
		}
	}

	// Failures: lose 4 of 10 servers; both categories keep answering.
	for _, s := range []int{1, 4, 6, 9} {
		cl.Fail(s)
	}
	fmt.Println("\nafter failing servers 1, 4, 6, 9:")
	for _, cat := range categories {
		ok, thin := 0, 0
		for q := 0; q < 1000; q++ {
			res, err := svc.PartialLookup(ctx, cat, target)
			if err != nil {
				log.Fatal(err)
			}
			if res.Satisfied(target) {
				ok++
			} else {
				thin++
			}
		}
		fmt.Printf("  %-12s %4d/1000 satisfied, %d thin answers\n", cat, ok, thin)
	}
}
