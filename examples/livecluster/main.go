// Livecluster: run a real partial-lookup deployment — five TCP server
// daemons on loopback sockets — and drive it through the public API,
// including the Sec. 7.1 "clients with preferences" variation: return
// the t *best* entries under a client cost function (here, simulated
// network latency to each file-sharing peer).
//
//	go run ./examples/livecluster
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/stats"
	"repro/internal/transport"
)

const numServers = 5

func main() {
	// Boot five daemons exactly as cmd/plsd does, on ephemeral ports.
	rng := stats.NewRNG(11)
	servers := make([]*transport.Server, numServers)
	addrs := make([]string, numServers)
	nodes := make([]*node.Node, numServers)
	for i := 0; i < numServers; i++ {
		nodes[i] = node.New(i, rng.Split())
		servers[i] = transport.NewServer(nodes[i])
		addr, err := servers[i].Listen("127.0.0.1:0")
		if err != nil {
			log.Fatalf("listen %d: %v", i, err)
		}
		addrs[i] = addr
	}
	peerClients := make([]*transport.Client, numServers)
	for i := 0; i < numServers; i++ {
		peerClients[i] = transport.NewClient(addrs)
		nodes[i].Attach(peerClients[i])
	}
	defer func() {
		for i := 0; i < numServers; i++ {
			peerClients[i].Close()
			servers[i].Close()
		}
	}()
	fmt.Printf("cluster up: %d plsd servers on %v\n", numServers, addrs)

	// A client anywhere on the network.
	client := transport.NewClient(addrs)
	defer client.Close()
	svc, err := core.NewService(client,
		core.WithSeed(23),
		core.WithDefaultConfig(core.Config{Scheme: core.RandomServer, X: 12}))
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()

	// 40 peers serve a file; each has a (simulated) measured latency.
	latency := make(map[core.Entry]float64, 40)
	entries := make([]core.Entry, 0, 40)
	latRng := stats.NewRNG(99)
	for i := 0; i < 40; i++ {
		peer := core.Entry(fmt.Sprintf("peer-%02d:6881", i))
		entries = append(entries, peer)
		latency[peer] = 5 + 295*latRng.Float64() // 5..300 ms
	}
	if err := svc.Place(ctx, "ubuntu.iso", entries); err != nil {
		log.Fatal(err)
	}

	// Plain partial lookup: any 3 peers.
	res, err := svc.PartialLookup(ctx, "ubuntu.iso", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplain partial_lookup(ubuntu.iso, 3):")
	for _, p := range res.Entries[:3] {
		fmt.Printf("  %s (%.0f ms)\n", p, latency[p])
	}

	// Preference lookup (Sec. 7.1): the 3 lowest-latency peers among
	// an over-fetched candidate set.
	cost := func(v core.Entry) float64 { return latency[v] }
	pref, err := svc.PreferenceLookup(ctx, "ubuntu.iso", 3, 4, cost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npreference lookup (t=3, overfetch 4x, cost = latency):")
	for _, p := range pref.Entries {
		fmt.Printf("  %s (%.0f ms)\n", p, latency[p])
	}
	fmt.Printf("contacted %d servers to assemble the candidate set\n", pref.Contacted)

	// Show it holds up when a daemon actually dies.
	servers[2].Close()
	fmt.Println("\nkilled server 2; lookups fail over transparently:")
	pref, err = svc.PreferenceLookup(ctx, "ubuntu.iso", 3, 4, cost)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pref.Entries {
		fmt.Printf("  %s (%.0f ms)\n", p, latency[p])
	}
}
