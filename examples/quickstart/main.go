// Quickstart: build an in-process cluster of 10 lookup servers, manage
// one key under each of the paper's five placement strategies, and
// compare what each costs and returns.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/entry"
	"repro/internal/metrics"
	"repro/internal/stats"
)

func main() {
	ctx := context.Background()

	// One cluster, five keys, one strategy per key — the paper's
	// "different strategies can manage different types of keys".
	cl := cluster.New(10, stats.NewRNG(42))
	svc, err := core.NewService(cl.Caller(),
		core.WithSeed(7),
		core.WithKeyConfig("by-full", core.Config{Scheme: core.FullReplication}),
		core.WithKeyConfig("by-fixed", core.Config{Scheme: core.Fixed, X: 20}),
		core.WithKeyConfig("by-randomserver", core.Config{Scheme: core.RandomServer, X: 20}),
		core.WithKeyConfig("by-round", core.Config{Scheme: core.RoundRobin, Y: 2}),
		core.WithKeyConfig("by-hash", core.Config{Scheme: core.Hash, Y: 2, Seed: 99}),
		// The traditional hashing baseline of Fig. 1 (center), for contrast.
		core.WithKeyConfig("by-partition", core.Config{Scheme: core.KeyPartition}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 100 entries per key — say, 100 mirrors of a popular file.
	entries := entry.Synthetic(100)
	keys := []string{"by-full", "by-fixed", "by-randomserver", "by-round", "by-hash", "by-partition"}
	for _, key := range keys {
		if err := svc.Place(ctx, key, entries); err != nil {
			log.Fatalf("place %s: %v", key, err)
		}
	}

	fmt.Println("partial_lookup(k, 15) under each strategy (100 entries, 10 servers):")
	fmt.Printf("%-18s %8s %9s %9s %8s\n", "strategy", "storage", "coverage", "contacted", "got")
	for _, key := range keys {
		res, err := svc.PartialLookup(ctx, key, 15)
		if err != nil {
			log.Fatalf("lookup %s: %v", key, err)
		}
		fmt.Printf("%-18s %8d %9d %9d %8d\n",
			svc.ConfigFor(key).String(),
			cl.TotalStorage(key),
			metrics.Coverage(cl.Snapshot(key)),
			res.Contacted,
			len(res.Entries))
	}

	// Updates: the interface is the same for every strategy.
	fmt.Println("\nadd mirror191 / delete v1 on every key:")
	for _, key := range keys {
		if err := svc.Add(ctx, key, "mirror191"); err != nil {
			log.Fatalf("add %s: %v", key, err)
		}
		if err := svc.Delete(ctx, key, "v1"); err != nil {
			log.Fatalf("delete %s: %v", key, err)
		}
	}
	for _, key := range keys {
		res, _ := svc.PartialLookup(ctx, key, 10)
		fmt.Printf("  %-18s still satisfies t=10: %v\n", svc.ConfigFor(key).String(), res.Satisfied(10))
	}

	// Fault tolerance: kill three servers; partial lookups continue.
	fmt.Println("\nafter failing servers 0, 3, 7:")
	cl.Fail(0)
	cl.Fail(3)
	cl.Fail(7)
	for _, key := range keys {
		res, err := svc.PartialLookup(ctx, key, 10)
		if err != nil {
			// The traditional baseline loses any key whose single
			// owner failed — exactly the weakness the paper motivates
			// partial lookups with.
			fmt.Printf("  %-18s UNAVAILABLE: %v\n", svc.ConfigFor(key).String(), err)
			continue
		}
		fmt.Printf("  %-18s satisfied=%v (contacted %d live servers)\n",
			svc.ConfigFor(key).String(), res.Satisfied(10), res.Contacted)
	}
}
