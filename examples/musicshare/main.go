// Musicshare: the paper's motivating workload — a Napster-style music
// sharing service where song titles map to the peers holding copies.
//
// The example demonstrates the intro's two claims about partial
// lookups versus a traditional hashed lookup service:
//
//  1. Hot-spot resistance: a traditional hashing service maps a hot
//     key to ONE server, which takes the whole query load; a partial
//     lookup service spreads the same load over all servers.
//
//  2. Provider fairness: Round-y returns each replica with equal
//     probability, so no single peer is hammered for a popular song.
//
//     go run ./examples/musicshare
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/stats"
)

const (
	numServers = 10
	numSongs   = 200
	numPeers   = 500
	lookups    = 20000
)

func main() {
	ctx := context.Background()
	rng := stats.NewRNG(2024)

	cl := cluster.New(numServers, rng.Split())
	svc, err := core.NewService(cl.Caller(),
		core.WithSeed(5),
		// Song catalogs churn as peers join and leave, and providers
		// should be load-balanced: Round-2 gives zero unfairness.
		core.WithDefaultConfig(core.Config{Scheme: core.RoundRobin, Y: 2}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Build the catalog: song i is held by a random set of peers;
	// popular songs (low rank) have many replicas.
	songs := make([]string, numSongs)
	for i := range songs {
		songs[i] = fmt.Sprintf("song-%03d", i)
		replicas := 5 + (numSongs-i)/4 // popular songs have up to ~55 replicas
		entries := make([]core.Entry, 0, replicas)
		seen := map[int]bool{}
		for len(entries) < replicas {
			p := rng.IntN(numPeers)
			if !seen[p] {
				seen[p] = true
				entries = append(entries, core.Entry(fmt.Sprintf("peer-%03d:6881", p)))
			}
		}
		if err := svc.Place(ctx, songs[i], entries); err != nil {
			log.Fatalf("place %s: %v", songs[i], err)
		}
	}
	fmt.Printf("catalog: %d songs across %d servers, %d total replica entries\n",
		numSongs, numServers, totalStorage(cl, songs))

	// Query load follows a Zipf popularity curve: song-000 is hot.
	popularity := stats.NewZipf(numSongs, 1.1)

	// Per-server query counts under the partial lookup service.
	partialLoad := make([]int, numServers)
	peerReturns := make(map[core.Entry]int)
	satisfied := 0
	before := serverMessages(cl)
	for q := 0; q < lookups; q++ {
		song := songs[popularity.Sample(rng)-1]
		res, err := svc.PartialLookup(ctx, song, 3) // "two or three sites to contact"
		if err != nil {
			log.Fatal(err)
		}
		if res.Satisfied(3) {
			satisfied++
		}
		for _, p := range res.Entries {
			peerReturns[p]++
		}
	}
	for s := 0; s < numServers; s++ {
		partialLoad[s] = int(serverMessages(cl)[s] - before[s])
	}

	// A traditional hashing service sends every query for a key to
	// hash(key): the hot song's server takes the whole hot load.
	hashedLoad := make([]int, numServers)
	for q := 0; q < lookups; q++ {
		song := songs[popularity.Sample(rng)-1]
		hashedLoad[hashKey(song)%numServers]++
	}

	fmt.Printf("\n%d partial lookups (t=3), %.1f%% satisfied\n", lookups, 100*float64(satisfied)/float64(lookups))
	fmt.Println("\nper-server query load — partial lookup vs traditional key hashing:")
	fmt.Printf("%-8s %14s %14s\n", "server", "partial-lookup", "key-hashing")
	maxP, maxH := 0, 0
	for s := 0; s < numServers; s++ {
		fmt.Printf("%-8d %14d %14d\n", s, partialLoad[s], hashedLoad[s])
		if partialLoad[s] > maxP {
			maxP = partialLoad[s]
		}
		if hashedLoad[s] > maxH {
			maxH = hashedLoad[s]
		}
	}
	fmt.Printf("hottest server takes %.1f%% of load with partial lookups vs %.1f%% with key hashing\n",
		100*float64(maxP)/float64(lookups), 100*float64(maxH)/float64(lookups))

	// Provider fairness for the hottest song: Round-y spreads returns
	// evenly over its replicas.
	fmt.Println("\nfairness: times each peer was returned (hottest song's replicas):")
	hot := songs[0]
	hotCounts := map[core.Entry]int{}
	for q := 0; q < 5000; q++ {
		res, err := svc.PartialLookup(ctx, hot, 3)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range res.Entries {
			hotCounts[p]++
		}
	}
	minC, maxC := -1, 0
	for _, c := range hotCounts {
		if minC == -1 || c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	fmt.Printf("  %d replicas, least-returned %d times, most-returned %d times (ratio %.2f)\n",
		len(hotCounts), minC, maxC, float64(maxC)/float64(minC))

	// Churn: a peer goes offline — remove it from every song it served.
	gone := core.Entry("peer-007:6881")
	removed := 0
	for _, song := range songs {
		if err := svc.Delete(ctx, song, gone); err != nil {
			log.Fatal(err)
		}
		removed++
	}
	fmt.Printf("\npeer %s went offline: issued delete on all %d songs; lookups keep working:\n", gone, removed)
	res, err := svc.PartialLookup(ctx, songs[0], 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  partial_lookup(%s, 3) -> %v\n", songs[0], res.Entries)
}

func totalStorage(cl *cluster.Cluster, keys []string) int {
	total := 0
	for _, k := range keys {
		total += cl.TotalStorage(k)
	}
	return total
}

// serverMessages snapshots per-server processed-message counters.
func serverMessages(cl *cluster.Cluster) []int64 {
	out := make([]int64, cl.N())
	for s := 0; s < cl.N(); s++ {
		out[s] = cl.ProcessedBy(s)
	}
	return out
}

// hashKey is the traditional service's key-to-server hash.
func hashKey(key string) int {
	h := 0
	for _, c := range key {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return h
}
