// Package repro's top-level benchmarks regenerate every table and
// figure of the paper's evaluation section under `go test -bench=.`,
// at reduced fidelity (run cmd/plsbench -fidelity full for
// paper-fidelity numbers). Key series points are attached to the
// benchmark output via b.ReportMetric, so a bench run shows the
// reproduced values inline.
package repro_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
)

// metricName makes a column label usable as a benchmark metric unit
// (no whitespace allowed).
func metricName(parts ...string) string {
	return strings.ReplaceAll(strings.Join(parts, "/"), " ", "")
}

// benchFidelity keeps each table/figure regeneration fast enough for a
// benchmark loop while preserving curve shapes.
var benchFidelity = bench.Fidelity{Runs: 10, Lookups: 200, Updates: 1000}

// runExperiment executes one registered experiment b.N times and
// reports selected row values as custom benchmark metrics.
func runExperiment(b *testing.B, id string, report func(*bench.Table, *testing.B)) {
	b.Helper()
	exp, err := bench.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		tbl, err = exp.Run(benchFidelity, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	if tbl != nil && report != nil {
		report(tbl, b)
	}
}

// value looks up a row by label and returns its col-th value.
func value(tbl *bench.Table, label string, col int) float64 {
	for _, row := range tbl.Rows {
		if row.Label == label {
			return row.Values[col]
		}
	}
	return -1
}

// BenchmarkTable1Storage regenerates Table 1 (storage cost, h=100,
// n=10). Metrics: measured storage per strategy.
func BenchmarkTable1Storage(b *testing.B) {
	runExperiment(b, "table1", func(tbl *bench.Table, b *testing.B) {
		for _, row := range tbl.Rows {
			b.ReportMetric(row.Values[1], row.Label+"/entries")
		}
	})
}

// BenchmarkFig4LookupCost regenerates Figure 4 (lookup cost vs target
// answer size). Metrics: cost at t=35 per strategy.
func BenchmarkFig4LookupCost(b *testing.B) {
	runExperiment(b, "fig4", func(tbl *bench.Table, b *testing.B) {
		for col, name := range tbl.Columns {
			b.ReportMetric(value(tbl, "35", col), name+"/servers@t35")
		}
	})
}

// BenchmarkFig6Coverage regenerates Figure 6 (coverage vs storage).
// Metrics: coverage at budget 200 per strategy family.
func BenchmarkFig6Coverage(b *testing.B) {
	runExperiment(b, "fig6", func(tbl *bench.Table, b *testing.B) {
		for col, name := range tbl.Columns[:3] {
			b.ReportMetric(value(tbl, "200", col), name+"/coverage@200")
		}
	})
}

// BenchmarkFig7FaultTolerance regenerates Figure 7 (fault tolerance vs
// target answer size). Metrics: tolerated failures at t=30.
func BenchmarkFig7FaultTolerance(b *testing.B) {
	runExperiment(b, "fig7", func(tbl *bench.Table, b *testing.B) {
		for col, name := range tbl.Columns {
			b.ReportMetric(value(tbl, "30", col), name+"/failures@t30")
		}
	})
}

// BenchmarkFig9Unfairness regenerates Figure 9 (unfairness vs storage,
// t=35). Metrics: unfairness at budgets 100 and 1000.
func BenchmarkFig9Unfairness(b *testing.B) {
	runExperiment(b, "fig9", func(tbl *bench.Table, b *testing.B) {
		for col, name := range tbl.Columns {
			b.ReportMetric(value(tbl, "100", col), name+"/U@100")
			b.ReportMetric(value(tbl, "1000", col), name+"/U@1000")
		}
	})
}

// BenchmarkFig12Cushion regenerates Figure 12 (Fixed-x failure rate vs
// cushion). Metrics: failure percentage at cushions 0 and 4.
func BenchmarkFig12Cushion(b *testing.B) {
	runExperiment(b, "fig12", func(tbl *bench.Table, b *testing.B) {
		for col, name := range tbl.Columns {
			b.ReportMetric(value(tbl, "0", col), metricName(name, "fail%@b0"))
			b.ReportMetric(value(tbl, "4", col), metricName(name, "fail%@b4"))
		}
	})
}

// BenchmarkFig13Deterioration regenerates Figure 13 (RandomServer
// unfairness vs updates). Metrics: unfairness at 0 and 4000 updates.
func BenchmarkFig13Deterioration(b *testing.B) {
	runExperiment(b, "fig13", func(tbl *bench.Table, b *testing.B) {
		b.ReportMetric(value(tbl, "0", 0), "randomServer/U@0")
		b.ReportMetric(value(tbl, "4000", 0), "randomServer/U@4000")
	})
}

// BenchmarkFig14UpdateOverhead regenerates Figure 14 (update overhead,
// Fixed-50 vs Hash-y). Metrics: messages at h=100 and h=300.
func BenchmarkFig14UpdateOverhead(b *testing.B) {
	runExperiment(b, "fig14", func(tbl *bench.Table, b *testing.B) {
		for _, h := range []string{"100", "300"} {
			b.ReportMetric(value(tbl, h, 0), "fixed50/msgs@h"+h)
			b.ReportMetric(value(tbl, h, 1), "hashY/msgs@h"+h)
		}
	})
}

// BenchmarkTable2Summary regenerates Table 2 (strategy star summary).
func BenchmarkTable2Summary(b *testing.B) {
	runExperiment(b, "table2", nil)
}

// BenchmarkAblationGreedyVsExactFT compares the Appendix A greedy
// fault-tolerance heuristic against the exact brute force on the
// canonical placements (DESIGN.md ablation): it reports how often and
// how far greedy overestimates the true tolerance.
func BenchmarkAblationGreedyVsExactFT(b *testing.B) {
	gap, err := bench.AblationGreedyVsExact(benchFidelity, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if gap, err = bench.AblationGreedyVsExact(benchFidelity, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gap.MeanGap, "greedy-exact/meanGap")
	b.ReportMetric(gap.MaxGap, "greedy-exact/maxGap")
	b.ReportMetric(gap.ExactFraction, "greedy-exact/matchFraction")
}

// BenchmarkAblationCushionLifetime verifies the paper's Sec. 6.2 rule
// of thumb that doubling the mean entry lifetime roughly halves the
// cushion needed for a given failure rate.
func BenchmarkAblationCushionLifetime(b *testing.B) {
	var rows map[int][2]float64
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.AblationCushionLifetime(benchFidelity, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	for life, vals := range rows {
		b.ReportMetric(vals[0], "fail%@b2/life"+strconv.Itoa(life))
		b.ReportMetric(vals[1], "fail%@b4/life"+strconv.Itoa(life))
	}
}

// BenchmarkOpsPlaceLookup measures raw operation throughput of the
// in-process cluster for each strategy — the library-level cost a user
// pays per partial lookup.
func BenchmarkOpsPlaceLookup(b *testing.B) {
	for _, scheme := range []string{"full", "fixed", "randomserver", "round", "hash"} {
		b.Run(scheme, func(b *testing.B) {
			lookup, cleanup, err := bench.NewLookupLoop(scheme, 100, 10, 200)
			if err != nil {
				b.Fatal(err)
			}
			defer cleanup()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := lookup(15); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOpsUpdate measures add+delete throughput per strategy.
func BenchmarkOpsUpdate(b *testing.B) {
	for _, scheme := range []string{"full", "fixed", "randomserver", "round", "hash"} {
		b.Run(scheme, func(b *testing.B) {
			update, cleanup, err := bench.NewUpdateLoop(scheme, 100, 10, 200)
			if err != nil {
				b.Fatal(err)
			}
			defer cleanup()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := update(fmt.Sprintf("bench-e%d", i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
